"""Synthetic graph families used by tests, examples and the benchmark.

The paper's Table 1 is asymptotic, so the reproduction sweeps controlled
families that exercise each regime the analysis distinguishes:

* **paths / cycles** — diameter ``δ = Θ(n)``; worst case for Hash-Min.
* **Erdős–Rényi / Barabási–Albert** — small diameter; the "typical"
  regime for PageRank, CC, SSSP, betweenness.
* **complete graphs** — the ``K = O(n)`` worst case for MIS coloring.
* **random trees** — rows 8–9 (Euler tour, pre/post-order traversal).
* **bipartite graphs** — row 14 (bipartite maximal matching).
* **labeled digraphs + pattern graphs** — rows 18–20 (simulation).

All generators take an explicit ``seed`` so every experiment is
deterministic and reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Sequence, Tuple

from repro.graph.graph import Graph


def path_graph(n: int) -> Graph:
    """The path ``0 - 1 - ... - (n-1)``; diameter ``n - 1``."""
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n`` vertices; diameter ``⌊n/2⌋``."""
    g = path_graph(n)
    if n > 2:
        g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> Graph:
    """A star: center ``0`` joined to leaves ``1 .. n-1``."""
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(0, v)
    return g


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` — worst case for MIS coloring."""
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u, v in itertools.combinations(range(n), 2):
        g.add_edge(u, v)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """A 2-D grid; vertices are ``(r, c)`` tuples.

    Useful as a road-network stand-in: bounded degree, large diameter.
    """
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def erdos_renyi_graph(
    n: int, p: float, seed: int = 0, directed: bool = False
) -> Graph:
    """G(n, p): every (ordered, if directed) pair is an edge w.p. ``p``."""
    rng = random.Random(seed)
    g = Graph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    if directed:
        pairs = ((u, v) for u in range(n) for v in range(n) if u != v)
    else:
        pairs = itertools.combinations(range(n), 2)
    for u, v in pairs:
        if rng.random() < p:
            g.add_edge(u, v)
    return g


def connected_erdos_renyi_graph(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) patched to be connected.

    A random spanning-tree skeleton guarantees connectivity; the ER edges
    are laid on top.  Used by workloads whose sequential reference
    assumes connectivity (diameter, SSSP on one component, …).
    """
    rng = random.Random(seed)
    g = erdos_renyi_graph(n, p, seed=seed)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    return g


def barabasi_albert_graph(n: int, k: int, seed: int = 0) -> Graph:
    """Preferential-attachment scale-free graph.

    Each new vertex attaches to ``k`` existing vertices chosen with
    probability proportional to their current degree (by sampling from
    the repeated-endpoints list, the classic BA construction).
    """
    if n <= k:
        return complete_graph(max(n, 1))
    rng = random.Random(seed)
    g = complete_graph(k + 1)
    endpoints: List[int] = []
    for u, v in g.edges():
        endpoints.extend((u, v))
    for v in range(k + 1, n):
        targets = set()
        while len(targets) < k:
            targets.add(rng.choice(endpoints))
        g.add_vertex(v)
        for t in targets:
            g.add_edge(v, t)
            endpoints.extend((v, t))
    return g


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniformly random labeled tree (random attachment)."""
    rng = random.Random(seed)
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


def balanced_binary_tree(depth: int) -> Graph:
    """A complete binary tree of the given depth (root ``0``)."""
    g = Graph()
    g.add_vertex(0)
    n = 2 ** (depth + 1) - 1
    for v in range(1, n):
        g.add_edge(v, (v - 1) // 2)
    return g


def caterpillar_tree(spine: int, legs: int) -> Graph:
    """A caterpillar: a path of ``spine`` vertices, each with ``legs``
    pendant leaves.  A tree with large diameter and varying degrees."""
    g = path_graph(spine)
    nxt = spine
    for s in range(spine):
        for _ in range(legs):
            g.add_edge(s, nxt)
            nxt += 1
    return g


def random_weighted_graph(
    n: int,
    p: float,
    seed: int = 0,
    min_weight: float = 1.0,
    max_weight: float = 100.0,
    connected: bool = True,
    distinct_weights: bool = True,
) -> Graph:
    """A weighted undirected graph for MST / SSSP / matching workloads.

    ``distinct_weights=True`` assigns every edge a unique weight, which
    makes the minimum spanning tree unique — convenient for verifying
    the vertex-centric Boruvka against sequential Prim edge-by-edge.
    """
    rng = random.Random(seed)
    if connected:
        g = connected_erdos_renyi_graph(n, p, seed=seed)
    else:
        g = erdos_renyi_graph(n, p, seed=seed)
    edges = list(g.edges())
    if distinct_weights:
        weights = rng.sample(range(1, 10 * len(edges) + 1), len(edges))
        for (u, v), w in zip(edges, weights):
            g.set_weight(u, v, float(w))
    else:
        for u, v in edges:
            g.set_weight(u, v, rng.uniform(min_weight, max_weight))
    return g


def random_bipartite_graph(
    n_left: int, n_right: int, p: float, seed: int = 0
) -> Tuple[Graph, Sequence, Sequence]:
    """A random bipartite graph.

    Returns ``(graph, left_ids, right_ids)``.  Left vertices are
    ``("L", i)`` and right vertices ``("R", j)`` so partition membership
    is recoverable from the id alone — the Pregel bipartite-matching
    program keys its phases off that tag.
    """
    rng = random.Random(seed)
    g = Graph()
    left = [("L", i) for i in range(n_left)]
    right = [("R", j) for j in range(n_right)]
    for v in left + right:
        g.add_vertex(v)
    for u in left:
        for v in right:
            if rng.random() < p:
                g.add_edge(u, v)
    return g, left, right


def random_labeled_digraph(
    n: int,
    p: float,
    labels: Sequence[str],
    seed: int = 0,
) -> Graph:
    """A random directed graph with vertex labels drawn from ``labels``.

    The data-graph side of the simulation workloads (rows 18–20).
    """
    rng = random.Random(seed)
    g = erdos_renyi_graph(n, p, seed=seed, directed=True)
    for v in range(n):
        g.set_label(v, rng.choice(list(labels)))
    return g


def random_query_graph(
    n: int,
    labels: Sequence[str],
    seed: int = 0,
    extra_edge_prob: float = 0.3,
) -> Graph:
    """A small connected labeled query (pattern) graph.

    A random arborescence keeps it connected; extra forward/backward
    edges give it cycles so dual simulation differs from plain
    simulation.
    """
    rng = random.Random(seed)
    g = Graph(directed=True)
    g.add_vertex(0, label=rng.choice(list(labels)))
    for v in range(1, n):
        g.add_vertex(v, label=rng.choice(list(labels)))
        g.add_edge(rng.randrange(v), v)
    for u in range(n):
        for v in range(n):
            if u != v and not g.has_edge(u, v):
                if rng.random() < extra_edge_prob / n:
                    g.add_edge(u, v)
    return g


def linked_list_graph(n: int, seed: Optional[int] = None) -> Graph:
    """A directed path encoding a linked list for list-ranking (§3.4.2).

    Each vertex points to its *predecessor*; the head has none.  With a
    ``seed`` the vertex ids are shuffled so that list order is unrelated
    to id order, as the paper stipulates ("the elements in L can be
    provided as input in any arbitrary order").
    """
    ids = list(range(n))
    if seed is not None:
        random.Random(seed).shuffle(ids)
    g = Graph(directed=True)
    for v in ids:
        g.add_vertex(v)
    for i in range(1, n):
        g.add_edge(ids[i], ids[i - 1])  # edge to predecessor
    return g
