"""Immutable CSR graph snapshots, optionally memory-mapped from disk.

The mutable :class:`~repro.graph.graph.Graph` is a dict-of-dicts:
every vertex row is a hash table of ``EdgeData`` objects, so resident
memory scales with graph size and the Table-1 suite caps out at what
fits in RAM.  :class:`CsrSnapshot` is the out-of-core answer — an
*immutable* compressed-sparse-row view of the same graph:

* ``out_offsets`` / ``out_targets`` / ``out_weights`` — forward
  adjacency as flat int64/float64 columns over *positions* (the frozen
  0..n-1 numbering of ``Graph.vertices()`` insertion order, which is
  also the order the engines' :class:`~repro.graph.partition.
  DenseIndex` is derived from);
* the mirror ``in_*`` columns for directed graphs (reverse adjacency
  in edge-insertion order, exactly matching ``Graph.in_neighbors``);
* a type-tagged id table mapping positions back to the original
  hashable vertex ids (an int64 column when every id is an int, a
  pickled list otherwise — tuple and string ids round-trip exactly).

A snapshot implements the :class:`Graph` *read* API — ``directed``,
``num_vertices``, ``vertices()``, ``neighbors()``, ``in_neighbors()``,
``weight()``, degrees, ``edges(data=True)``, labels — plus the
``out_edge_items()`` / ``in_edge_items()`` pair that the runtime's
``GraphSource`` seam prefers, so :class:`~repro.bsp.state.StateStore`,
the dense fast path, fingerprinting and every vertex program work
identically over a live ``Graph`` or a snapshot.  Iteration order is
preserved bit for bit (vertex insertion order; per-row edge insertion
order), which is what makes snapshot-backed runs byte-identical to
in-memory runs.

On-disk format
--------------
A snapshot directory holds one JSON manifest plus one binary data
file, following the durable-checkpoint conventions of
:mod:`repro.bsp.durability` (atomic tmp+fsync+rename writes, CRC'd
sections, typed corruption errors)::

    MANIFEST.json    # format version, counts, per-section index:
                     #   {offset, length, crc32, typecode, count}
    snapshot.bin     # the concatenated sections, raw little-endian
                     # int64/float64 columns (or pickled payloads for
                     # object sections: non-int ids, labels,
                     # non-float weights)

:meth:`CsrSnapshot.open` memory-maps ``snapshot.bin`` read-only —
after the one-time CRC verification pass, the OS page cache is the
only cache, so a rank that touches one shard's rows faults in only
that shard's pages.  Every integrity failure raises
:class:`~repro.errors.SnapshotCorruptionError`; raw pickle or struct
tracebacks never escape.

Disk-backed snapshots pickle as their path (ranks of the parallel
backend re-open and re-map them instead of receiving adjacency over a
pipe); in-RAM snapshots pickle by value.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import sys
import zlib
from array import array
from typing import (
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    EdgeNotFoundError,
    SnapshotCorruptionError,
    SnapshotError,
    VertexNotFoundError,
)

#: Version of the on-disk layout; bumped on incompatible changes.
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
DATA_NAME = "snapshot.bin"

_OFFSET_TYPECODE = "q"
_WEIGHT_TYPECODE = "d"
#: Manifest tag for sections stored as pickled Python objects.
_PICKLE_TAG = "pickle"

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class _SnapshotEdge:
    """Read-only stand-in for :class:`~repro.graph.graph.EdgeData` in
    ``edges(data=True)`` — same ``weight`` / ``label`` attributes,
    no shared mutability."""

    __slots__ = ("weight", "label")

    def __init__(self, weight: float, label: Any = None):
        self.weight = weight
        self.label = label

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"_SnapshotEdge(weight={self.weight!r}, "
            f"label={self.label!r})"
        )


def _pack_weights(weights: List[Any]):
    """The most compact exact representation of an edge-weight column.

    ``None`` when every weight is the default ``1.0`` (the column is
    omitted entirely); an ``array('d')`` when every weight is an exact
    ``float`` (round-trips bit for bit); otherwise the list itself
    (pickled on save), so int or exotic weights keep their exact type
    and the byte-identity contract.
    """
    if all(type(w) is float for w in weights):
        if all(w == 1.0 for w in weights):
            return None
        return array(_WEIGHT_TYPECODE, weights)
    return list(weights)


def _ids_storable_as_int64(ids: Sequence[Hashable]) -> bool:
    return all(
        type(v) is int and _INT64_MIN <= v <= _INT64_MAX for v in ids
    )


class CsrSnapshot:
    """An immutable CSR view of a graph (see the module docstring).

    Build one with :meth:`from_graph`, stream one from an edge list
    with :func:`repro.graph.io.write_snapshot_from_edge_list`, or
    memory-map a saved one with :meth:`open`.  The constructor wires
    pre-built columns together and is not meant to be called directly.
    """

    def __init__(
        self,
        *,
        directed: bool,
        ids: List[Hashable],
        out_offsets,
        out_targets,
        out_weights=None,
        in_offsets=None,
        in_targets=None,
        in_weights=None,
        num_edges: int,
        vertex_labels: Optional[Dict[int, Any]] = None,
        edge_labels: Optional[Dict[Tuple[int, int], Any]] = None,
        path: Optional[str] = None,
        _mmap=None,
        _file=None,
    ):
        self._directed = directed
        self._ids = ids
        self._pos: Dict[Hashable, int] = {
            v: i for i, v in enumerate(ids)
        }
        if len(self._pos) != len(ids):
            raise SnapshotError("duplicate vertex ids in snapshot")
        self._out_off = out_offsets
        self._out_tgt = out_targets
        self._out_w = out_weights
        if directed:
            self._in_off = in_offsets
            self._in_tgt = in_targets
            self._in_w = in_weights
        else:
            self._in_off = out_offsets
            self._in_tgt = out_targets
            self._in_w = out_weights
        self._num_edges = num_edges
        self._vlabels = vertex_labels or {}
        self._elabels = edge_labels or {}
        self._path = path
        self._mmap = _mmap
        self._fh = _file

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph) -> "CsrSnapshot":
        """Freeze a live graph (or any ``GraphSource``) into CSR
        columns, preserving vertex and per-row edge iteration order
        exactly."""
        ids = list(graph.vertices())
        pos = {v: i for i, v in enumerate(ids)}
        out_off = array(_OFFSET_TYPECODE, [0])
        out_tgt = array(_OFFSET_TYPECODE)
        out_weights: List[Any] = []
        for v in ids:
            for u, w in graph.out_edge_items(v):
                out_tgt.append(pos[u])
                out_weights.append(w)
            out_off.append(len(out_tgt))
        in_off = in_tgt = None
        in_w = None
        if graph.directed:
            in_off = array(_OFFSET_TYPECODE, [0])
            in_tgt = array(_OFFSET_TYPECODE)
            in_weights: List[Any] = []
            for v in ids:
                for u, w in graph.in_edge_items(v):
                    in_tgt.append(pos[u])
                    in_weights.append(w)
                in_off.append(len(in_tgt))
            in_w = _pack_weights(in_weights)
        vlabels = {}
        for i, v in enumerate(ids):
            label = graph.label(v)
            if label is not None:
                vlabels[i] = label
        elabels: Dict[Tuple[int, int], Any] = {}
        for u, v, data in graph.edges(data=True):
            if data.label is not None:
                pu, pv = pos[u], pos[v]
                elabels[(pu, pv)] = data.label
                if not graph.directed:
                    elabels[(pv, pu)] = data.label
        return cls(
            directed=graph.directed,
            ids=ids,
            out_offsets=out_off,
            out_targets=out_tgt,
            out_weights=_pack_weights(out_weights),
            in_offsets=in_off,
            in_targets=in_tgt,
            in_weights=in_w,
            num_edges=graph.num_edges,
            vertex_labels=vlabels,
            edge_labels=elabels,
        )

    def to_graph(self):
        """Materialize back into a mutable
        :class:`~repro.graph.graph.Graph` (tests and tooling; the
        runtime never needs this)."""
        from repro.graph.graph import Graph

        g = Graph(directed=self._directed)
        for i, v in enumerate(self._ids):
            g.add_vertex(v, self._vlabels.get(i))
        for u, v, data in self.edges(data=True):
            g.add_edge(u, v, weight=data.weight, label=data.label)
        return g

    # ------------------------------------------------------------------
    # Graph read API
    # ------------------------------------------------------------------

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def path(self) -> Optional[str]:
        """The on-disk directory backing this snapshot (``None`` for
        in-RAM snapshots)."""
        return self._path

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._pos

    def __repr__(self):  # pragma: no cover - debugging aid
        kind = "directed" if self._directed else "undirected"
        where = f" path={self._path!r}" if self._path else ""
        return (
            f"<CsrSnapshot {kind} n={self.num_vertices} "
            f"m={self.num_edges}{where}>"
        )

    def has_vertex(self, vertex: Hashable) -> bool:
        return vertex in self._pos

    def vertices(self) -> Iterator[Hashable]:
        return iter(self._ids)

    def label(self, vertex: Hashable) -> Any:
        return self._vlabels.get(self._position(vertex))

    def _position(self, vertex: Hashable) -> int:
        pos = self._pos.get(vertex)
        if pos is None:
            raise VertexNotFoundError(vertex)
        return pos

    def neighbors(self, vertex: Hashable) -> Iterator[Hashable]:
        pos = self._position(vertex)
        ids = self._ids
        tgt = self._out_tgt
        lo, hi = self._out_off[pos], self._out_off[pos + 1]
        return (ids[tgt[i]] for i in range(lo, hi))

    out_neighbors = neighbors

    def in_neighbors(self, vertex: Hashable) -> Iterator[Hashable]:
        pos = self._position(vertex)
        ids = self._ids
        tgt = self._in_tgt
        lo, hi = self._in_off[pos], self._in_off[pos + 1]
        return (ids[tgt[i]] for i in range(lo, hi))

    def sorted_neighbors(self, vertex: Hashable) -> list:
        if vertex not in self._pos:
            return []
        return sorted(self.neighbors(vertex))

    def degree(self, vertex: Hashable) -> int:
        pos = self._position(vertex)
        return self._out_off[pos + 1] - self._out_off[pos]

    out_degree = degree

    def in_degree(self, vertex: Hashable) -> int:
        pos = self._position(vertex)
        return self._in_off[pos + 1] - self._in_off[pos]

    def total_degree(self, vertex: Hashable) -> int:
        if self._directed:
            return self.in_degree(vertex) + self.out_degree(vertex)
        return self.degree(vertex)

    def out_edge_items(
        self, vertex: Hashable
    ) -> Iterator[Tuple[Hashable, Any]]:
        """``(neighbor, weight)`` pairs in row (edge-insertion) order
        — the ``GraphSource`` fast read the state store builds its
        per-vertex edge dicts from."""
        pos = self._position(vertex)
        lo, hi = self._out_off[pos], self._out_off[pos + 1]
        ids = self._ids
        tgt = self._out_tgt
        w = self._out_w
        if w is None:
            for i in range(lo, hi):
                yield ids[tgt[i]], 1.0
        else:
            for i in range(lo, hi):
                yield ids[tgt[i]], w[i]

    def in_edge_items(
        self, vertex: Hashable
    ) -> Iterator[Tuple[Hashable, Any]]:
        """``(in-neighbor, weight)`` pairs in reverse-row order."""
        pos = self._position(vertex)
        lo, hi = self._in_off[pos], self._in_off[pos + 1]
        ids = self._ids
        tgt = self._in_tgt
        w = self._in_w
        if w is None:
            for i in range(lo, hi):
                yield ids[tgt[i]], 1.0
        else:
            for i in range(lo, hi):
                yield ids[tgt[i]], w[i]

    def _find_slot(self, upos: int, vpos: int) -> int:
        """The flat column index of edge ``(upos, vpos)`` in the
        forward adjacency, or -1."""
        tgt = self._out_tgt
        for i in range(self._out_off[upos], self._out_off[upos + 1]):
            if tgt[i] == vpos:
                return i
        return -1

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        upos = self._pos.get(u)
        vpos = self._pos.get(v)
        if upos is None or vpos is None:
            return False
        return self._find_slot(upos, vpos) >= 0

    def weight(self, u: Hashable, v: Hashable) -> float:
        upos = self._pos.get(u)
        vpos = self._pos.get(v)
        slot = (
            self._find_slot(upos, vpos)
            if upos is not None and vpos is not None
            else -1
        )
        if slot < 0:
            raise EdgeNotFoundError(u, v)
        return 1.0 if self._out_w is None else self._out_w[slot]

    def edge_label(self, u: Hashable, v: Hashable) -> Any:
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._elabels.get((self._pos[u], self._pos[v]))

    def edges(self, data: bool = False) -> Iterator[Tuple]:
        """Iterate edges in the same order and orientation as the
        source :class:`Graph`: rows in vertex order, row entries in
        edge-insertion order, each undirected edge yielded once from
        its earlier-positioned endpoint (both directions of an
        undirected edge enter the adjacency simultaneously, so the
        earlier row is always where ``Graph.edges`` first sees it)."""
        ids = self._ids
        off, tgt, w = self._out_off, self._out_tgt, self._out_w
        for p in range(len(ids)):
            for i in range(off[p], off[p + 1]):
                q = tgt[i]
                if not self._directed and q < p:
                    continue
                if data:
                    yield (
                        ids[p],
                        ids[q],
                        _SnapshotEdge(
                            1.0 if w is None else w[i],
                            self._elabels.get((p, q)),
                        ),
                    )
                else:
                    yield ids[p], ids[q]

    # ------------------------------------------------------------------
    # Position-level reads (the dense fast path compiles from these
    # without re-hashing ids)
    # ------------------------------------------------------------------

    def position_of(self, vertex: Hashable) -> int:
        """The frozen 0..n-1 position of ``vertex``."""
        return self._position(vertex)

    def out_row_positions(self, pos: int):
        """The forward-adjacency row of position ``pos`` as target
        positions (a zero-copy slice of the CSR column)."""
        return self._out_tgt[self._out_off[pos]:self._out_off[pos + 1]]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _column_sections(self) -> List[Tuple[str, bytes, str, int]]:
        """``(name, payload, typecode, count)`` for every section this
        snapshot needs on disk (``typecode`` is an array code or the
        pickle tag)."""

        def raw(col, typecode):
            if isinstance(col, array):
                return col.tobytes()
            return memoryview(col).tobytes()

        def weight_section(name, col):
            if col is None:
                return None
            if isinstance(col, list):
                return (
                    name,
                    pickle.dumps(col, pickle.HIGHEST_PROTOCOL),
                    _PICKLE_TAG,
                    len(col),
                )
            return (
                name,
                raw(col, _WEIGHT_TYPECODE),
                _WEIGHT_TYPECODE,
                len(col),
            )

        sections = [
            (
                "out_offsets",
                raw(self._out_off, _OFFSET_TYPECODE),
                _OFFSET_TYPECODE,
                len(self._out_off),
            ),
            (
                "out_targets",
                raw(self._out_tgt, _OFFSET_TYPECODE),
                _OFFSET_TYPECODE,
                len(self._out_tgt),
            ),
        ]
        ws = weight_section("out_weights", self._out_w)
        if ws is not None:
            sections.append(ws)
        if self._directed:
            sections.append(
                (
                    "in_offsets",
                    raw(self._in_off, _OFFSET_TYPECODE),
                    _OFFSET_TYPECODE,
                    len(self._in_off),
                )
            )
            sections.append(
                (
                    "in_targets",
                    raw(self._in_tgt, _OFFSET_TYPECODE),
                    _OFFSET_TYPECODE,
                    len(self._in_tgt),
                )
            )
            ws = weight_section("in_weights", self._in_w)
            if ws is not None:
                sections.append(ws)
        if _ids_storable_as_int64(self._ids):
            sections.append(
                (
                    "ids",
                    array(_OFFSET_TYPECODE, self._ids).tobytes(),
                    _OFFSET_TYPECODE,
                    len(self._ids),
                )
            )
        else:
            sections.append(
                (
                    "ids",
                    pickle.dumps(
                        self._ids, pickle.HIGHEST_PROTOCOL
                    ),
                    _PICKLE_TAG,
                    len(self._ids),
                )
            )
        if self._vlabels:
            sections.append(
                (
                    "vertex_labels",
                    pickle.dumps(
                        self._vlabels, pickle.HIGHEST_PROTOCOL
                    ),
                    _PICKLE_TAG,
                    len(self._vlabels),
                )
            )
        if self._elabels:
            sections.append(
                (
                    "edge_labels",
                    pickle.dumps(
                        self._elabels, pickle.HIGHEST_PROTOCOL
                    ),
                    _PICKLE_TAG,
                    len(self._elabels),
                )
            )
        return sections

    def save(self, directory: str) -> str:
        """Write this snapshot under ``directory`` (created if
        missing) with durable-checkpoint conventions: the data file
        and the manifest are each written atomically, every section
        carries its CRC-32 and byte length, and a crash mid-write can
        never leave a half-written file under a valid name."""
        from repro.bsp.durability import atomic_write

        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        sections = self._column_sections()
        index: Dict[str, Dict[str, Any]] = {}
        blob = bytearray()
        for name, payload, typecode, count in sections:
            index[name] = {
                "offset": len(blob),
                "length": len(payload),
                "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
                "typecode": typecode,
                "count": count,
            }
            blob.extend(payload)
        manifest = {
            "format_version": FORMAT_VERSION,
            "kind": "csr-snapshot",
            "directed": self._directed,
            "num_vertices": self.num_vertices,
            "num_edges": self._num_edges,
            "byteorder": sys.byteorder,
            "itemsize": array(_OFFSET_TYPECODE).itemsize,
            "data_file": DATA_NAME,
            "sections": index,
        }
        atomic_write(os.path.join(directory, DATA_NAME), bytes(blob))
        atomic_write(
            os.path.join(directory, MANIFEST_NAME),
            json.dumps(manifest, indent=2, sort_keys=True).encode(
                "utf-8"
            ),
        )
        return directory

    @classmethod
    def open(cls, directory: str) -> "CsrSnapshot":
        """Memory-map a saved snapshot read-only.

        Section lengths and CRC-32s are verified once up front
        (sequential reads); after that the OS page cache is the only
        cache.  Any integrity failure raises
        :class:`~repro.errors.SnapshotCorruptionError`.
        """
        directory = os.path.abspath(os.fspath(directory))
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path, "rb") as fh:
                manifest = json.loads(fh.read().decode("utf-8"))
        except FileNotFoundError:
            raise SnapshotError(
                f"no snapshot manifest at {manifest_path!r}"
            ) from None
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            raise SnapshotCorruptionError(
                f"unreadable snapshot manifest {manifest_path!r}: "
                f"{exc}"
            ) from None
        if (
            not isinstance(manifest, dict)
            or manifest.get("kind") != "csr-snapshot"
        ):
            raise SnapshotCorruptionError(
                f"{manifest_path!r} is not a CSR snapshot manifest"
            )
        if manifest.get("format_version") != FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version "
                f"{manifest.get('format_version')!r} is not supported "
                f"(this build reads {FORMAT_VERSION})"
            )
        if manifest.get("byteorder") != sys.byteorder or manifest.get(
            "itemsize"
        ) != array(_OFFSET_TYPECODE).itemsize:
            raise SnapshotError(
                "snapshot was written on an incompatible host "
                f"(byteorder={manifest.get('byteorder')!r}, "
                f"itemsize={manifest.get('itemsize')!r})"
            )
        data_path = os.path.join(
            directory, manifest.get("data_file", DATA_NAME)
        )
        try:
            fh = open(data_path, "rb")
        except OSError as exc:
            raise SnapshotCorruptionError(
                f"snapshot data file missing: {exc}"
            ) from None
        size = os.fstat(fh.fileno()).st_size
        if size:
            mapped = mmap.mmap(
                fh.fileno(), 0, access=mmap.ACCESS_READ
            )
            buf = memoryview(mapped)
        else:
            mapped = None
            buf = memoryview(b"")

        def section_bytes(name, entry):
            offset, length = entry.get("offset"), entry.get("length")
            if (
                not isinstance(offset, int)
                or not isinstance(length, int)
                or offset < 0
                or length < 0
                or offset + length > len(buf)
            ):
                raise SnapshotCorruptionError(
                    f"snapshot section {name!r} is out of bounds "
                    f"(offset={offset!r}, length={length!r}, "
                    f"file size {len(buf)})"
                )
            chunk = buf[offset:offset + length]
            if zlib.crc32(chunk) & 0xFFFFFFFF != entry.get("crc32"):
                raise SnapshotCorruptionError(
                    f"snapshot section {name!r} failed its CRC-32 "
                    "check"
                )
            return chunk

        sections = manifest.get("sections")
        if not isinstance(sections, dict):
            raise SnapshotCorruptionError(
                f"{manifest_path!r} has no section index"
            )

        def column(name, typecode, required=True):
            entry = sections.get(name)
            if entry is None:
                if required:
                    raise SnapshotCorruptionError(
                        f"snapshot section {name!r} is missing"
                    )
                return None
            chunk = section_bytes(name, entry)
            if entry.get("typecode") == _PICKLE_TAG:
                try:
                    return pickle.loads(bytes(chunk))
                except Exception as exc:
                    raise SnapshotCorruptionError(
                        f"snapshot section {name!r} failed to "
                        f"decode: {exc}"
                    ) from None
            if entry.get("typecode") != typecode:
                raise SnapshotCorruptionError(
                    f"snapshot section {name!r} has typecode "
                    f"{entry.get('typecode')!r}, expected "
                    f"{typecode!r}"
                )
            return chunk.cast(typecode)

        try:
            directed = bool(manifest.get("directed"))
            out_off = column("out_offsets", _OFFSET_TYPECODE)
            out_tgt = column("out_targets", _OFFSET_TYPECODE)
            out_w = column(
                "out_weights", _WEIGHT_TYPECODE, required=False
            )
            in_off = in_tgt = in_w = None
            if directed:
                in_off = column("in_offsets", _OFFSET_TYPECODE)
                in_tgt = column("in_targets", _OFFSET_TYPECODE)
                in_w = column(
                    "in_weights", _WEIGHT_TYPECODE, required=False
                )
            ids_col = column("ids", _OFFSET_TYPECODE)
            ids = (
                ids_col
                if isinstance(ids_col, list)
                else list(ids_col)
            )
            vlabels = column(
                "vertex_labels", _PICKLE_TAG, required=False
            )
            elabels = column(
                "edge_labels", _PICKLE_TAG, required=False
            )
            n = manifest.get("num_vertices")
            if len(ids) != n or len(out_off) != n + 1:
                raise SnapshotCorruptionError(
                    "snapshot column lengths disagree with the "
                    f"manifest (n={n!r}, ids={len(ids)}, "
                    f"offsets={len(out_off)})"
                )
            return cls(
                directed=directed,
                ids=ids,
                out_offsets=out_off,
                out_targets=out_tgt,
                out_weights=out_w,
                in_offsets=in_off,
                in_targets=in_tgt,
                in_weights=in_w,
                num_edges=int(manifest.get("num_edges", 0)),
                vertex_labels=vlabels,
                edge_labels=elabels,
                path=directory,
                _mmap=mapped,
                _file=fh,
            )
        except BaseException:
            buf.release()
            if mapped is not None:
                try:
                    mapped.close()
                except BufferError:
                    # Column views created before the failing section
                    # are still referenced by the propagating
                    # traceback's frame; the map closes when they are
                    # collected.
                    pass
            fh.close()
            raise

    def close(self) -> None:
        """Release the mmap (no-op for in-RAM snapshots).  Reads
        after close raise ``ValueError`` from the released views."""
        # Drop every view into the map before closing it; a surviving
        # exported buffer would make mmap.close() raise BufferError.
        self._out_off = self._out_tgt = self._out_w = None
        self._in_off = self._in_tgt = self._in_w = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:  # pragma: no cover - defensive
                pass
            self._mmap = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    def __reduce__(self):
        if self._path is not None:
            # Disk-backed snapshots travel as their path: a rank
            # re-opens and mmaps only the pages it touches instead of
            # receiving the adjacency over a pipe.
            return (CsrSnapshot.open, (self._path,))
        return (
            _rebuild_snapshot,
            (
                self._directed,
                self._ids,
                _plain_column(self._out_off, _OFFSET_TYPECODE),
                _plain_column(self._out_tgt, _OFFSET_TYPECODE),
                _plain_column(self._out_w, _WEIGHT_TYPECODE),
                _plain_column(self._in_off, _OFFSET_TYPECODE)
                if self._directed
                else None,
                _plain_column(self._in_tgt, _OFFSET_TYPECODE)
                if self._directed
                else None,
                _plain_column(self._in_w, _WEIGHT_TYPECODE)
                if self._directed
                else None,
                self._num_edges,
                self._vlabels,
                self._elabels,
            ),
        )


def _plain_column(col, typecode):
    """A picklable copy of a CSR column (mmap views become arrays)."""
    if col is None or isinstance(col, (array, list)):
        return col
    return array(typecode, col)


def _rebuild_snapshot(
    directed,
    ids,
    out_off,
    out_tgt,
    out_w,
    in_off,
    in_tgt,
    in_w,
    num_edges,
    vlabels,
    elabels,
):
    return CsrSnapshot(
        directed=directed,
        ids=ids,
        out_offsets=out_off,
        out_targets=out_tgt,
        out_weights=out_w,
        in_offsets=in_off,
        in_targets=in_tgt,
        in_weights=in_w,
        num_edges=num_edges,
        vertex_labels=vlabels,
        edge_labels=elabels,
    )


def is_graph_snapshot(obj: Any) -> bool:
    """Whether ``obj`` is a :class:`CsrSnapshot` (the runtime's cheap
    "is this graph source immutable and position-addressed?" check)."""
    return isinstance(obj, CsrSnapshot)
