"""Rooted-tree helpers shared by the tree workloads (Table 1 rows 8–9)
and by the Tarjan–Vishkin biconnectivity pipeline (row 5)."""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import NotATreeError
from repro.graph.graph import Graph
from repro.graph.properties import require_tree


def root_tree(
    tree: Graph, root: Hashable
) -> Tuple[Dict[Hashable, Optional[Hashable]], Dict[Hashable, int]]:
    """Orient an undirected tree away from ``root``.

    Returns ``(parent, depth)`` maps; ``parent[root] is None``.
    """
    require_tree(tree)
    if not tree.has_vertex(root):
        raise NotATreeError(f"root {root!r} is not in the tree")
    parent: Dict[Hashable, Optional[Hashable]] = {root: None}
    depth: Dict[Hashable, int] = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in tree.neighbors(u):
            if v not in parent:
                parent[v] = u
                depth[v] = depth[u] + 1
                queue.append(v)
    return parent, depth


def children_map(
    parent: Dict[Hashable, Optional[Hashable]]
) -> Dict[Hashable, List[Hashable]]:
    """Invert a parent map into sorted children lists."""
    children: Dict[Hashable, List[Hashable]] = {v: [] for v in parent}
    for v, p in parent.items():
        if p is not None:
            children[p].append(v)
    for kids in children.values():
        kids.sort(key=repr)
    return children


def subtree_sizes(
    parent: Dict[Hashable, Optional[Hashable]]
) -> Dict[Hashable, int]:
    """Number of vertices in each vertex's subtree (itself included)."""
    children = children_map(parent)
    root = next(v for v, p in parent.items() if p is None)
    size: Dict[Hashable, int] = {}
    stack: List[Tuple[Hashable, bool]] = [(root, False)]
    while stack:
        v, expanded = stack.pop()
        if expanded:
            size[v] = 1 + sum(size[c] for c in children[v])
        else:
            stack.append((v, True))
            for c in children[v]:
                stack.append((c, False))
    return size


def euler_tour_edges(tree: Graph, root: Hashable) -> List[Tuple]:
    """The Euler tour of ``tree`` as an ordered list of directed edges.

    This is the *sequential reference* tour used to validate the
    vertex-centric construction: it follows the paper's convention that
    the successor of directed edge ``(u, v)`` is ``(v, next_v(u))``
    where ``next_v`` cycles through ``v``'s id-sorted adjacency list.
    The tour starts at ``(root, first(root))`` and visits each of the
    ``2(n-1)`` directed edges exactly once.
    """
    require_tree(tree)
    if tree.num_vertices == 1:
        return []
    sorted_adj = {v: tree.sorted_neighbors(v) for v in tree.vertices()}
    next_of: Dict[Tuple, Tuple] = {}
    for v, nbrs in sorted_adj.items():
        for i, u in enumerate(nbrs):
            nxt = nbrs[(i + 1) % len(nbrs)]
            next_of[(u, v)] = (v, nxt)
    start = (root, sorted_adj[root][0])
    tour = [start]
    cur = next_of[start]
    while cur != start:
        tour.append(cur)
        cur = next_of[cur]
    return tour
