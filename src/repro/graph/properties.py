"""Structural graph properties used for verification and workload setup.

These are *reference* implementations: simple, obviously-correct code
used to check the benchmarked algorithms and to characterize generated
workloads (e.g. the diameter ``δ`` that drives Hash-Min's superstep
count).  They are deliberately not instrumented.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import NotATreeError
from repro.graph.graph import Graph


def bfs_distances(graph: Graph, source: Hashable) -> Dict[Hashable, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def eccentricity(graph: Graph, vertex: Hashable) -> int:
    """Largest hop distance from ``vertex`` to any reachable vertex."""
    return max(bfs_distances(graph, vertex).values())


def diameter(graph: Graph) -> int:
    """Exact diameter via BFS from every vertex (reference only)."""
    return max(eccentricity(graph, v) for v in graph.vertices())


def connected_components(graph: Graph) -> List[Set[Hashable]]:
    """Connected components of an undirected graph, as vertex sets."""
    seen: Set[Hashable] = set()
    components = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp = set(bfs_distances(graph, start))
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the (undirected) graph is connected."""
    if graph.num_vertices == 0:
        return True
    first = next(iter(graph.vertices()))
    return len(bfs_distances(graph, first)) == graph.num_vertices


def is_tree(graph: Graph) -> bool:
    """Whether an undirected graph is a tree."""
    return (
        graph.num_vertices > 0
        and graph.num_edges == graph.num_vertices - 1
        and is_connected(graph)
    )


def require_tree(graph: Graph) -> None:
    """Raise :class:`NotATreeError` unless ``graph`` is a tree."""
    if not is_tree(graph):
        raise NotATreeError(
            f"expected a tree, got n={graph.num_vertices} "
            f"m={graph.num_edges} connected={is_connected(graph)}"
        )


def bipartition(graph: Graph) -> Optional[Tuple[Set, Set]]:
    """A 2-coloring ``(left, right)`` if bipartite, else ``None``."""
    color: Dict[Hashable, int] = {}
    for start in graph.vertices():
        if start in color:
            continue
        color[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in color:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    return None
    left = {v for v, c in color.items() if c == 0}
    right = {v for v, c in color.items() if c == 1}
    return left, right


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map ``degree -> number of vertices with that degree``."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.total_degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def max_degree(graph: Graph) -> int:
    """The maximum total degree in the graph (0 for empty graphs)."""
    return max(
        (graph.total_degree(v) for v in graph.vertices()), default=0
    )


def is_valid_coloring(graph: Graph, colors: Dict[Hashable, int]) -> bool:
    """Whether ``colors`` assigns different colors to adjacent vertices."""
    for u, v in graph.edges():
        if u == v:
            continue
        if u not in colors or v not in colors:
            return False
        if colors[u] == colors[v]:
            return False
    return True


def is_matching(graph: Graph, edges: Iterable[Tuple]) -> bool:
    """Whether ``edges`` is a matching in ``graph`` (edge-disjoint and
    present in the graph)."""
    used: Set[Hashable] = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if u in used or v in used or u == v:
            return False
        used.add(u)
        used.add(v)
    return True


def is_maximal_matching(graph: Graph, edges: Iterable[Tuple]) -> bool:
    """Whether ``edges`` is a matching no graph edge can extend."""
    edges = list(edges)
    if not is_matching(graph, edges):
        return False
    used: Set[Hashable] = set()
    for u, v in edges:
        used.add(u)
        used.add(v)
    for u, v in graph.edges():
        if u != v and u not in used and v not in used:
            return False
    return True


def spanning_tree_weight(graph: Graph, edges: Iterable[Tuple]) -> float:
    """Total weight of ``edges``, verifying they form a spanning tree."""
    edges = list(edges)
    t = Graph()
    for v in graph.vertices():
        t.add_vertex(v)
    total = 0.0
    for u, v in edges:
        total += graph.weight(u, v)
        t.add_edge(u, v)
    require_tree(t)
    return total
