"""Edge-list I/O for :class:`~repro.graph.graph.Graph` and streamed
construction of :class:`~repro.graph.snapshot.CsrSnapshot`.

The format is the plain whitespace-separated edge list used by most
graph-processing systems (SNAP, Giraph's simple text formats):

* comment lines start with ``#``;
* ``u v`` adds an unweighted edge;
* ``u v w`` adds an edge of weight ``w``;
* a lone ``u`` adds an isolated vertex;
* an optional header ``# directed`` switches to a directed graph.

Vertex ids are read as integers when possible, else kept as strings.

Three readers share one chunked tokenizer:

* :func:`iter_edge_list` — the streaming layer: reads the source in
  fixed-size chunks (never the whole file) and yields typed entries,
  raising :class:`~repro.errors.EdgeListFormatError` on malformed
  lines with the offending line number and text;
* :func:`read_edge_list` — materializes a mutable :class:`Graph`
  (``on_duplicate="error"`` upgrades the default update-in-place
  behavior to :class:`~repro.errors.DuplicateEdgeError`);
* :func:`write_snapshot_from_edge_list` — builds an on-disk CSR
  snapshot in two streaming passes (degree count, then row fill)
  without ever materializing the dict-of-dicts representation, so a
  graph larger than RAM can be frozen for the out-of-core engine
  paths.  Duplicate edges always raise here: a CSR row layout is
  sized at first sight of each edge.
"""

from __future__ import annotations

import os
from array import array
from typing import IO, Iterator, Optional, Tuple, Union

from repro.errors import DuplicateEdgeError, EdgeListFormatError
from repro.graph.graph import Graph

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]

#: Characters read per chunk by the streaming tokenizer.
DEFAULT_CHUNK_SIZE = 1 << 16


def _parse_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _iter_lines_chunked(
    handle: IO[str], chunk_size: int
) -> Iterator[str]:
    """Lines of ``handle`` read ``chunk_size`` characters at a time.

    Unlike file iteration this never holds more than one chunk plus
    one partial line in memory regardless of line length, and it works
    on any object with ``read`` (sockets, pipes, ``StringIO``).
    """
    tail = ""
    while True:
        chunk = handle.read(chunk_size)
        if not chunk:
            break
        tail += chunk
        lines = tail.split("\n")
        tail = lines.pop()
        for line in lines:
            yield line
    if tail:
        yield tail


def iter_edge_list(
    source: PathOrFile,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[Tuple]:
    """Stream typed entries from an edge list without materializing
    anything graph-sized.

    Yields, in file order:

    * ``("header", lineno, directed)`` for a ``# directed`` /
      ``# undirected`` comment (other comments are skipped);
    * ``("vertex", lineno, v)`` for an isolated-vertex line;
    * ``("edge", lineno, u, v, weight)`` with ``weight`` a float
      (``1.0`` when the line carries none).

    Malformed lines — too many tokens, an unparsable weight — raise
    :class:`~repro.errors.EdgeListFormatError` carrying the 1-based
    line number.
    """
    if hasattr(source, "read"):
        yield from _iter_entries(source, chunk_size)
        return
    with open(os.fspath(source)) as handle:
        yield from _iter_entries(handle, chunk_size)


def _iter_entries(handle: IO[str], chunk_size: int) -> Iterator[Tuple]:
    for lineno, raw in enumerate(
        _iter_lines_chunked(handle, chunk_size), start=1
    ):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            lowered = line.lower()
            if "undirected" in lowered:
                yield ("header", lineno, False)
            elif "directed" in lowered:
                yield ("header", lineno, True)
            continue
        parts = line.split()
        if len(parts) == 1:
            yield ("vertex", lineno, _parse_vertex(parts[0]))
        elif len(parts) == 2:
            yield (
                "edge",
                lineno,
                _parse_vertex(parts[0]),
                _parse_vertex(parts[1]),
                1.0,
            )
        elif len(parts) == 3:
            try:
                weight = float(parts[2])
            except ValueError:
                raise EdgeListFormatError(
                    lineno, line, f"unparsable weight {parts[2]!r}"
                ) from None
            yield (
                "edge",
                lineno,
                _parse_vertex(parts[0]),
                _parse_vertex(parts[1]),
                weight,
            )
        else:
            raise EdgeListFormatError(
                lineno, line, "expected 'u', 'u v' or 'u v w'"
            )


def read_edge_list(
    source: PathOrFile,
    directed: Optional[bool] = None,
    on_duplicate: str = "update",
) -> Graph:
    """Read a graph from an edge-list file or open text handle.

    ``directed`` overrides any ``# directed`` header when not
    ``None``.  ``on_duplicate`` is ``"update"`` (the mutable graph's
    native update-in-place semantics) or ``"error"`` (raise
    :class:`~repro.errors.DuplicateEdgeError` — the strictness the
    streamed snapshot builder always applies, exposed here so callers
    can validate a file before freezing it).
    """
    if on_duplicate not in ("update", "error"):
        raise ValueError(
            f"on_duplicate must be 'update' or 'error', got "
            f"{on_duplicate!r}"
        )
    # Two phases, preserving historical semantics: a '# directed'
    # header anywhere in the file applies to every edge, so entries
    # are collected first and the graph built after.
    pending = []
    file_directed = False
    for entry in iter_edge_list(source):
        if entry[0] == "header":
            # Historical semantics: a 'directed' header anywhere wins;
            # 'undirected' headers are descriptive, never a reset.
            file_directed = file_directed or entry[2]
        else:
            pending.append(entry)
    is_directed = file_directed if directed is None else directed
    g = Graph(directed=is_directed)
    for entry in pending:
        if entry[0] == "vertex":
            g.add_vertex(entry[2])
        else:
            _, lineno, u, v, weight = entry
            if on_duplicate == "error" and g.has_edge(u, v):
                raise DuplicateEdgeError(u, v, lineno=lineno)
            g.add_edge(u, v, weight=weight)
    return g


def write_snapshot_from_edge_list(
    source: Union[str, "os.PathLike[str]"],
    directory: str,
    directed: Optional[bool] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
):
    """Freeze an edge-list file straight into an on-disk CSR snapshot.

    Two streaming passes over ``source`` — degree counting, then row
    filling — so peak memory is O(n) id table plus the CSR columns
    themselves, never the dict-of-dicts :class:`Graph`.  The result is
    byte-identical to ``CsrSnapshot.from_graph(read_edge_list(source))
    .save(directory)``: vertex order is first appearance, row order is
    file order, exactly as ``Graph.add_edge`` would have built them.

    Duplicate edges raise :class:`~repro.errors.DuplicateEdgeError`
    (a CSR row is sized at first sight of each edge, so there is no
    update-in-place to fall back to).  Returns the opened, mmap-backed
    :class:`~repro.graph.snapshot.CsrSnapshot`.
    """
    from repro.graph.snapshot import CsrSnapshot

    source = os.fspath(source)

    # ---- pass 1: id table, degree counts, directedness ----------
    pos = {}
    ids = []
    fwd_deg = array("q")
    rev_deg = array("q")
    self_loops = {}
    file_directed = False
    num_edges = 0

    def intern(v):
        p = pos.get(v)
        if p is None:
            p = len(ids)
            pos[v] = p
            ids.append(v)
            fwd_deg.append(0)
            rev_deg.append(0)
        return p

    for entry in iter_edge_list(source, chunk_size):
        kind = entry[0]
        if kind == "header":
            file_directed = file_directed or entry[2]
        elif kind == "vertex":
            intern(entry[2])
        else:
            up = intern(entry[2])
            vp = intern(entry[3])
            fwd_deg[up] += 1
            rev_deg[vp] += 1
            if up == vp:
                self_loops[up] = self_loops.get(up, 0) + 1
            num_edges += 1
    is_directed = file_directed if directed is None else directed

    # ---- row layout ---------------------------------------------
    n = len(ids)
    out_off = array("q", bytes(8 * (n + 1)))
    if is_directed:
        in_off = array("q", bytes(8 * (n + 1)))
        for p in range(n):
            out_off[p + 1] = out_off[p] + fwd_deg[p]
            in_off[p + 1] = in_off[p] + rev_deg[p]
        total_in = in_off[n]
    else:
        # An undirected edge occupies both endpoints' rows; a
        # self-loop (which incremented both counters) occupies one.
        in_off = None
        total_in = 0
        for p in range(n):
            row = fwd_deg[p] + rev_deg[p] - self_loops.get(p, 0)
            out_off[p + 1] = out_off[p] + row
    total_out = out_off[n]
    out_tgt = array("q", bytes(8 * total_out))
    out_w = array("d", bytes(8 * total_out))
    in_tgt = array("q", bytes(8 * total_in)) if is_directed else None
    in_w = array("d", bytes(8 * total_in)) if is_directed else None

    # ---- pass 2: fill rows in file order, catching duplicates ---
    cursor = array("q", out_off[:n])
    in_cursor = array("q", in_off[:n]) if is_directed else None
    seen = set()
    all_default = True
    for entry in iter_edge_list(source, chunk_size):
        if entry[0] != "edge":
            continue
        _, lineno, u, v, weight = entry
        up, vp = pos[u], pos[v]
        key = (
            (up, vp)
            if is_directed or up <= vp
            else (vp, up)
        )
        if key in seen:
            raise DuplicateEdgeError(u, v, lineno=lineno)
        seen.add(key)
        if weight != 1.0:
            all_default = False
        slot = cursor[up]
        out_tgt[slot] = vp
        out_w[slot] = weight
        cursor[up] = slot + 1
        if is_directed:
            slot = in_cursor[vp]
            in_tgt[slot] = up
            in_w[slot] = weight
            in_cursor[vp] = slot + 1
        elif up != vp:
            slot = cursor[vp]
            out_tgt[slot] = up
            out_w[slot] = weight
            cursor[vp] = slot + 1

    snapshot = CsrSnapshot(
        directed=is_directed,
        ids=ids,
        out_offsets=out_off,
        out_targets=out_tgt,
        out_weights=None if all_default else out_w,
        in_offsets=in_off,
        in_targets=in_tgt,
        in_weights=(
            None if all_default or not is_directed else in_w
        ),
        num_edges=num_edges,
    )
    snapshot.save(directory)
    snapshot.close()
    return CsrSnapshot.open(directory)


def write_edge_list(graph: Graph, target: PathOrFile) -> None:
    """Write ``graph`` as an edge list (weights included when != 1)."""
    if hasattr(target, "write"):
        _write_lines(graph, target)
        return
    with open(os.fspath(target), "w") as handle:
        _write_lines(graph, handle)


def _write_lines(graph: Graph, handle: IO[str]) -> None:
    handle.write(
        f"# {'directed' if graph.directed else 'undirected'} "
        f"n={graph.num_vertices} m={graph.num_edges}\n"
    )
    connected = set()
    for u, v, edata in graph.edges(data=True):
        connected.add(u)
        connected.add(v)
        if edata.weight == 1.0:
            handle.write(f"{u} {v}\n")
        else:
            handle.write(f"{u} {v} {edata.weight}\n")
    for v in graph.vertices():
        if v not in connected:
            handle.write(f"{v}\n")
