"""Edge-list I/O for :class:`~repro.graph.graph.Graph`.

The format is the plain whitespace-separated edge list used by most
graph-processing systems (SNAP, Giraph's simple text formats):

* comment lines start with ``#``;
* ``u v`` adds an unweighted edge;
* ``u v w`` adds an edge of weight ``w``;
* an optional header ``# directed`` switches to a directed graph.

Vertex ids are read as integers when possible, else kept as strings.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Union

from repro.errors import GraphError
from repro.graph.graph import Graph

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


def _parse_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(source: PathOrFile, directed: bool = None) -> Graph:
    """Read a graph from an edge-list file or open text handle.

    ``directed`` overrides any ``# directed`` header when not ``None``.
    """
    if hasattr(source, "read"):
        return _read_lines(source, directed)
    with open(os.fspath(source)) as handle:
        return _read_lines(handle, directed)


def _read_lines(handle: Iterable[str], directed) -> Graph:
    g = None
    pending = []
    file_directed = False
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if "directed" in line.lower() and "undirected" not in line.lower():
                file_directed = True
            continue
        parts = line.split()
        if len(parts) == 1:
            pending.append((_parse_vertex(parts[0]),))
        elif len(parts) == 2:
            pending.append((_parse_vertex(parts[0]), _parse_vertex(parts[1])))
        elif len(parts) == 3:
            pending.append(
                (
                    _parse_vertex(parts[0]),
                    _parse_vertex(parts[1]),
                    float(parts[2]),
                )
            )
        else:
            raise GraphError(
                f"line {lineno}: expected 'u', 'u v' or 'u v w', got {line!r}"
            )
    is_directed = file_directed if directed is None else directed
    g = Graph(directed=is_directed)
    for entry in pending:
        if len(entry) == 1:
            g.add_vertex(entry[0])
        elif len(entry) == 2:
            g.add_edge(entry[0], entry[1])
        else:
            g.add_edge(entry[0], entry[1], weight=entry[2])
    return g


def write_edge_list(graph: Graph, target: PathOrFile) -> None:
    """Write ``graph`` as an edge list (weights included when != 1)."""
    if hasattr(target, "write"):
        _write_lines(graph, target)
        return
    with open(os.fspath(target), "w") as handle:
        _write_lines(graph, handle)


def _write_lines(graph: Graph, handle: IO[str]) -> None:
    handle.write(
        f"# {'directed' if graph.directed else 'undirected'} "
        f"n={graph.num_vertices} m={graph.num_edges}\n"
    )
    connected = set()
    for u, v, edata in graph.edges(data=True):
        connected.add(u)
        connected.add(v)
        if edata.weight == 1.0:
            handle.write(f"{u} {v}\n")
        else:
            handle.write(f"{u} {v} {edata.weight}\n")
    for v in graph.vertices():
        if v not in connected:
            handle.write(f"{v}\n")
