"""The state store: vertex values, ownership, and the
checkpoint/rollback machinery behind every engine.

Middle layer of the decomposed runtime (``docs/architecture.md``).
:class:`StateStore` owns the Pregel engine's partitioned vertex
state — the ``states`` dict, the ``owner`` map (built through the
shared :func:`~repro.graph.partition.owner_for` rule), the worker
vertex lists — plus the recovery bookkeeping (checkpoint store and
per-superstep costs, the confined-recovery message/wake logs, the
mutation flag that vetoes confined replay).

The module-level functions implement the state-changing protocols
that used to live inline in the engine:

* :func:`apply_mutations` — Pregel's superstep-boundary topology
  mutations, in Pregel's order (edge removals, vertex removals,
  vertex additions, edge additions);
* :func:`confined_replay` — recompute only a crashed worker's
  partition from the logged per-superstep inboxes.

:class:`SnapshotRecovery` is the checkpoint/rollback mixin the
re-hosted GAS/block/async engines compose with the shared
:class:`~repro.bsp.loop.SuperstepLoop`: engines that can describe
their complete mutable state as a payload dict get write/rollback —
with the same cost accounting, trace events, and attempt budget as
the Pregel engine — by implementing ``_snapshot_payload()`` /
``_restore_payload()``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Set

from repro.bsp.checkpoint import (
    CheckpointStore,
    EngineSnapshot,
    restore_partition,
)
from repro.bsp.context import ComputeContext
from repro.bsp.vertex import VertexState
from repro.bsp.worker import Worker
from repro.errors import WorkerCrashError
from repro.graph.graph import Graph
from repro.graph.partition import owner_for
from repro.metrics.stats import RunStats
from repro.trace.events import CheckpointWrite, Rollback


class StateStore:
    """One engine's partitioned vertex state and recovery logs."""

    def __init__(
        self,
        graph: Graph,
        program,
        partitioner,
        num_workers: int,
    ):
        self.partitioner = partitioner
        self.num_workers = num_workers
        self.workers = [Worker(i) for i in range(num_workers)]
        self.states: Dict[Hashable, VertexState] = {}
        self.owner: Dict[Hashable, int] = {}
        # The GraphSource seam: both the live dict Graph and the
        # immutable CsrSnapshot yield per-vertex (neighbor, weight)
        # rows in identical order through *_edge_items, so the states
        # built here — and everything downstream — are byte-identical
        # whichever representation backs the run.  Exotic graph-likes
        # without the protocol fall back to the per-neighbor reads.
        out_items = getattr(graph, "out_edge_items", None)
        in_items = getattr(graph, "in_edge_items", None)
        for v in graph.vertices():
            if out_items is not None:
                out_edges = dict(out_items(v))
            else:
                out_edges = {
                    u: graph.weight(v, u) for u in graph.neighbors(v)
                }
            if not graph.directed:
                in_edges = out_edges
            elif in_items is not None:
                in_edges = dict(in_items(v))
            else:
                in_edges = {
                    u: graph.weight(u, v) for u in graph.in_neighbors(v)
                }
            state = VertexState(
                v,
                value=program.initial_value(v, graph),
                out_edges=out_edges,
                in_edges=in_edges,
            )
            self.states[v] = state
            self.workers[self.assign(v)].vertex_ids.append(v)

        # Recovery bookkeeping.
        self.ckpt_store = CheckpointStore()
        self.ckpt_costs: Dict[int, float] = {}
        self.message_log: Dict[int, Dict[Hashable, List[Any]]] = {}
        self.wake_log: Dict[int, bool] = {}
        self.mutated_since_checkpoint = False

    def assign(self, vertex_id: Hashable) -> int:
        """Record ``vertex_id``'s ownership (the shared
        :func:`~repro.graph.partition.owner_for` rule) and return the
        worker index.  The caller appends to the worker's vertex list
        (construction and mutation-added vertices do so at different
        points)."""
        widx = owner_for(vertex_id, self.partitioner, self.num_workers)
        self.owner[vertex_id] = widx
        return widx

    def prune_logs(self, superstep: int) -> None:
        """Drop confined-recovery log entries before ``superstep``
        (they can never be replayed once a checkpoint at that
        superstep exists)."""
        self.message_log = {
            t: log
            for t, log in self.message_log.items()
            if t >= superstep
        }
        self.wake_log = {
            t: wake
            for t, wake in self.wake_log.items()
            if t >= superstep
        }


def apply_mutations(engine) -> Optional[Set[Hashable]]:
    """Apply the superstep's requested topology mutations.

    Returns ``None`` when no mutation was requested, else the set of
    removed vertex ids (possibly empty) whose ownership entries the
    caller reclaims after delivery — delivery still needs the owner
    map to reverse the senders' charges for messages whose destination
    was removed.
    """
    log = engine._ctx._mutations
    if log.is_empty():
        return None
    store = engine._store
    states = store.states
    store.mutated_since_checkpoint = True
    directed = engine._graph.directed
    for u, v in log.remove_edges:
        src = states.get(u)
        if src is not None:
            src.out_edges.pop(v, None)
        if directed:
            dst = states.get(v)
            if dst is not None:
                dst.in_edges.pop(u, None)
    removed: Set[Hashable] = set()
    for vid in log.remove_vertices:
        state = states.pop(vid, None)
        if state is None:
            continue
        removed.add(vid)
        for src in list(state.in_edges):
            other = states.get(src)
            if other is not None:
                other.out_edges.pop(vid, None)
        if directed:
            for dst in list(state.out_edges):
                other = states.get(dst)
                if other is not None:
                    other.in_edges.pop(vid, None)
        # Pending outbox messages for vid stay put: delivery sees the
        # missing destination, drops them and reverses the senders'
        # charges so the logical books balance.
        engine._fabric.inbox.pop(vid, None)
    if removed:
        # Compact the owners' id lists so later supersteps do not pay
        # a dead-vertex skip per removed vertex forever.
        for worker in {
            store.workers[store.owner[vid]] for vid in removed
        }:
            worker.vertex_ids = [
                v for v in worker.vertex_ids if v not in removed
            ]
    for vid, value in log.add_vertices:
        if vid in states:
            continue
        state = VertexState(vid, value=value, out_edges={})
        if directed:
            state.in_edges = {}
        states[vid] = state
        store.workers[store.assign(vid)].vertex_ids.append(vid)
        # A removed-then-re-added id keeps its (new) ownership.
        removed.discard(vid)
    for u, v, weight in log.add_edges:
        src = states.get(u)
        if src is None:
            continue
        src.out_edges[v] = weight
        if directed:
            dst = states.get(v)
            if dst is not None:
                dst.in_edges[u] = weight
    log.clear()
    return removed


def confined_replay(
    engine,
    crash: WorkerCrashError,
    superstep: int,
    stats: RunStats,
    ckpt,
) -> None:
    """Rebuild only the crashed worker's partition.

    The healthy workers keep their live state; the crashed partition
    is restored from the checkpoint and its vertices' ``compute``
    calls are replayed against the logged per-superstep inboxes, with
    outgoing messages and aggregator contributions suppressed (their
    effects are already in the live state of the other workers).
    Replay work is charged as recovery cost but does not touch the
    committed superstep stats.
    """
    store = engine._store
    fabric = engine._fabric
    worker_idx = crash.worker % store.num_workers
    restored = restore_partition(engine, ckpt, worker_idx)
    if engine._trace is not None:
        engine._trace.emit(
            Rollback(
                superstep=superstep,
                restored_vertices=restored,
                confined=True,
            )
        )
    worker = store.workers[worker_idx]
    program = engine._program
    ctx = ComputeContext(engine)
    replay_work = 0.0
    engine._replaying = fabric.replaying = True
    try:
        for t in range(ckpt.superstep, superstep):
            prev_aggs = (
                engine._aggregate_history[t - 1] if t >= 1 else {}
            )
            ctx._begin_superstep(t, prev_aggs)
            wake_all = store.wake_log.get(t, t == 0)
            log_t = store.message_log.get(t, {})
            for vid in worker.vertex_ids:
                state = store.states.get(vid)
                if state is None:
                    continue
                messages = log_t.get(vid)
                if messages:
                    state.halted = False
                elif state.halted and not wake_all:
                    continue
                elif wake_all:
                    state.halted = False
                messages = list(messages) if messages else []
                ctx._begin_vertex(state)
                program.compute(state, messages, ctx)
                replay_work += (
                    1 + len(messages) + ctx._sent + ctx._charged
                )
    finally:
        engine._replaying = fabric.replaying = False
    # The crashed worker lost its incoming queue for the current
    # superstep; restore it from the delivery log.
    log_now = store.message_log.get(superstep, {})
    for vid in worker.vertex_ids:
        if vid in log_now:
            fabric.inbox[vid] = list(log_now[vid])
        else:
            fabric.inbox.pop(vid, None)
    stats.replay_cost += replay_work
    stats.supersteps_replayed += superstep - ckpt.superstep


class SnapshotRecovery:
    """Checkpoint/rollback plumbing for payload-snapshot engines.

    Mixed into the re-hosted GAS/block/async engines.  Expects the
    host to define ``_loop`` (a
    :class:`~repro.bsp.loop.SuperstepLoop`), ``_ckpt_store``,
    ``_ckpt_costs``, ``_cost_model`` and ``_trace``, plus the two
    payload hooks:

    ``_snapshot_payload() -> dict``
        A deep-enough copy of all mutable run state (use
        :func:`~repro.bsp.checkpoint.cow_copy` per value).
    ``_restore_payload(payload)``
        Adopt a snapshot payload (copying again, so one snapshot can
        restore repeatedly).

    Rollback is always full for these engines: the snapshot restores
    every partition, the discarded supersteps' charges become replay
    cost, and their stats entries are deleted for re-execution —
    exactly the Pregel engine's full-rollback accounting.
    """

    def _latest_checkpoint(self):
        return self._ckpt_store.latest

    def _restored_count(self) -> int:
        return len(self._values)

    def _write_checkpoint(
        self, superstep: int, stats: RunStats
    ) -> None:
        snap = self._ckpt_store.save(
            EngineSnapshot(
                superstep=superstep, payload=self._snapshot_payload()
            )
        )
        cost = self._cost_model.checkpoint_cost(snap.size)
        stats.checkpoints_written += 1
        stats.checkpoint_cost += cost
        self._ckpt_costs[superstep] = cost
        if self._ckpt_store.durable:
            # Payload engines write durably too (a swapped-in
            # DurableCheckpointStore); cross-process resume context is
            # a Pregel-engine feature, so none is attached here.
            self._ckpt_store.persist(snap, None)
        if self._trace is not None:
            self._trace.emit(
                CheckpointWrite(
                    superstep=superstep, size=snap.size, cost=cost
                )
            )

    def _recover(
        self, crash: WorkerCrashError, superstep: int, stats: RunStats
    ) -> int:
        return self._loop.recover(self, crash, superstep, stats)

    def _rollback(
        self,
        crash: WorkerCrashError,
        superstep: int,
        stats: RunStats,
        ckpt: EngineSnapshot,
    ) -> int:
        discarded = stats.supersteps[ckpt.superstep:]
        for entry in discarded:
            stats.replay_cost += entry.cost(self._cost_model)
        stats.supersteps_replayed += len(discarded)
        del stats.supersteps[ckpt.superstep:]
        self._restore_payload(ckpt.payload)
        if self._trace is not None:
            self._trace.emit(
                Rollback(
                    superstep=ckpt.superstep,
                    restored_vertices=self._restored_count(),
                    confined=False,
                    discarded_supersteps=len(discarded),
                )
            )
        return ckpt.superstep
