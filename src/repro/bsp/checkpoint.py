"""Superstep-boundary checkpointing for the simulated Pregel engine.

Pregel and Giraph owe their practicality to checkpoint/rollback fault
tolerance: every ``k`` supersteps each worker persists its partition —
vertex values, halted flags, the incoming message queue, aggregator
state — and a worker failure rolls the whole computation back to the
last checkpoint (Malewicz et al. §4.2; see also Ammar & Özsu's
experimental survey, which treats checkpoint overhead as a first-class
cost dimension).  This module is the simulated analogue.

A :class:`Checkpoint` captures everything :class:`~repro.bsp.engine.
PregelEngine` needs to re-execute deterministically from a superstep
boundary:

* per-vertex value / out-edges / in-edges / halted flag (topology is
  part of the snapshot because programs may mutate it);
* the vertex-to-worker assignment (mutations can add vertices);
* the undelivered inbox (messages sent in ``s-1``, visible in ``s``);
* finalized aggregator values and the aggregate-history length;
* the engine RNG state (``random.Random.getstate``), so replayed
  supersteps draw the same randomness;
* the BPPA tracker observation, so replay does not double-count;
* the wake-all flag set by ``master.activate_all()``.

Snapshots use **copy-on-write semantics** via :func:`cow_copy`:
immutable values (ints, floats, strings, tuples of immutables, …) are
shared between the live state and the checkpoint, and only mutable
containers are copied.  For the common algorithms — whose vertex
values are numbers or small dicts — a checkpoint therefore costs far
less than a deep copy, while mutation of live state after the snapshot
can never corrupt the checkpoint.

The *write cost* charged to the run is proportional to the snapshot
size in state atoms (:func:`repro.metrics.bppa.state_atoms`), scaled
by the cost model's ``c_ckpt`` parameter — see
:meth:`repro.metrics.cost_model.BSPCostModel.checkpoint_cost`.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.metrics.bppa import BppaObservation, state_atoms

#: Types shared (not copied) by :func:`cow_copy`.
_IMMUTABLE_TYPES = (
    type(None),
    bool,
    int,
    float,
    complex,
    str,
    bytes,
    frozenset,
)


def cow_copy(value: Any) -> Any:
    """Structural-sharing copy: copy mutable containers, share leaves.

    Returns ``value`` itself when it is (recursively) immutable — an
    int, float, string, or a tuple built from immutables — and a
    recursive copy otherwise.  Unknown mutable objects fall back to
    ``copy.deepcopy``.  This is the copy-on-write discipline of the
    checkpoint layer: the snapshot and the live engine state share
    every immutable leaf, so snapshots are cheap and later in-place
    mutation of live containers cannot reach into the snapshot.
    """
    if isinstance(value, _IMMUTABLE_TYPES):
        return value
    if isinstance(value, tuple):
        copied = [cow_copy(item) for item in value]
        if all(c is o for c, o in zip(copied, value)):
            return value  # tuple of immutables: share it
        return tuple(copied)
    if isinstance(value, dict):
        return {cow_copy(k): cow_copy(v) for k, v in value.items()}
    if isinstance(value, list):
        return [cow_copy(item) for item in value]
    if isinstance(value, set):
        return {cow_copy(item) for item in value}
    return copy.deepcopy(value)


@dataclass
class VertexSnapshot:
    """One vertex's state inside a checkpoint.

    ``in_edges`` is ``None`` when the live state aliases ``out_edges``
    (undirected graphs); the restore re-creates the aliasing so the
    restored state has the same sharing structure as the original.
    """

    vertex_id: Hashable
    value: Any
    out_edges: Dict[Hashable, float]
    in_edges: Optional[Dict[Hashable, float]]
    halted: bool


@dataclass
class Checkpoint:
    """A full engine snapshot taken at the *start* of ``superstep``."""

    superstep: int
    vertices: List[VertexSnapshot]
    owner: Dict[Hashable, int]
    worker_vertex_ids: List[List[Hashable]]
    inbox: Dict[Hashable, List[Any]]
    agg_finalized: Dict[str, Any]
    history_len: int
    rng_state: Tuple
    wake_all: bool
    bppa_observation: Optional[BppaObservation] = None
    #: Whether the engine's dense fast path was engaged when the
    #: snapshot was taken; rollback resumes on the same path so the
    #: replayed supersteps execute identically.
    fast_active: bool = True
    #: Snapshot size in state atoms — drives the write-cost charge.
    size: int = 0

    def __post_init__(self):
        if self.size == 0:
            self.size = self._measure()

    def _measure(self) -> int:
        atoms = 0
        for snap in self.vertices:
            atoms += 1  # the id + halted flag, order unity
            atoms += state_atoms(snap.value)
            atoms += len(snap.out_edges)
            if snap.in_edges is not None:
                atoms += len(snap.in_edges)
        for msgs in self.inbox.values():
            atoms += sum(state_atoms(m) or 1 for m in msgs)
        atoms += state_atoms(self.agg_finalized)
        return atoms


@dataclass
class EngineSnapshot:
    """A generic payload snapshot for the re-hosted engines.

    The GAS/block/async engines have no vertex-state dicts of the
    Pregel shape, but each can describe its complete mutable run state
    as a payload dict (values, active sets, queues, counters — see
    each engine's ``_snapshot_payload``).  This wrapper carries the
    payload with the two attributes the shared machinery needs: the
    ``superstep`` the snapshot was taken at (the
    :class:`~repro.bsp.loop.CheckpointPolicy` schedule keys on it) and
    the ``size`` in state atoms (drives the write-cost charge, exactly
    like :class:`Checkpoint`).
    """

    superstep: int
    payload: Dict[str, Any]
    size: int = 0

    def __post_init__(self):
        if self.size == 0:
            self.size = state_atoms(self.payload)


class CheckpointStore:
    """Holds the most recent checkpoint and write-side accounting.

    Only the latest checkpoint is retained (rollback always targets
    it, exactly as in Pregel, which keeps one generation per worker);
    ``written`` counts every checkpoint taken over the run and
    ``total_size`` their cumulative size in atoms.  Stores either a
    full Pregel :class:`Checkpoint` or a re-hosted engine's
    :class:`EngineSnapshot` — anything with ``superstep`` and ``size``.
    """

    #: Whether checkpoints survive the process.  The on-disk subclass
    #: (:class:`~repro.bsp.durability.DurableCheckpointStore`) flips
    #: this so engines know to call :meth:`persist` after each save.
    durable = False

    def __init__(self):
        self.latest: Optional[Checkpoint] = None
        self.written: int = 0
        self.total_size: int = 0

    def save(self, checkpoint: Checkpoint) -> Checkpoint:
        self.latest = checkpoint
        self.written += 1
        self.total_size += checkpoint.size
        return checkpoint

    def persist(self, checkpoint, context=None) -> None:
        """Write ``checkpoint`` beyond the process.  The in-memory
        store keeps nothing durable; the durable subclass overrides
        this with the atomic on-disk write."""

    def require_latest(self) -> Checkpoint:
        if self.latest is None:
            raise CheckpointError(
                "no checkpoint available to restore from"
            )
        return self.latest


def take_checkpoint(engine, superstep: int) -> Checkpoint:
    """Snapshot ``engine`` at the start of ``superstep``.

    Must be called at a superstep boundary: the outbox is empty (all
    traffic of the previous superstep was delivered into the inbox)
    and no ``compute()`` call is in flight.
    """
    vertices = []
    for vid, state in engine._states.items():
        aliased = state.in_edges is state.out_edges
        vertices.append(
            VertexSnapshot(
                vertex_id=vid,
                value=cow_copy(state.value),
                out_edges=dict(state.out_edges),
                in_edges=None if aliased else dict(state.in_edges),
                halted=state.halted,
            )
        )
    tracker = engine._tracker
    observation = (
        dataclasses.replace(tracker.observation)
        if tracker is not None
        else None
    )
    return Checkpoint(
        superstep=superstep,
        vertices=vertices,
        owner=dict(engine._owner),
        worker_vertex_ids=[
            list(w.vertex_ids) for w in engine._workers
        ],
        inbox={
            vid: [cow_copy(m) for m in msgs]
            for vid, msgs in engine._inbox_snapshot_items()
        },
        agg_finalized=cow_copy(engine._agg_finalized),
        history_len=len(engine._aggregate_history),
        rng_state=engine.rng.getstate(),
        wake_all=engine._wake_all,
        bppa_observation=observation,
        fast_active=engine._fast_active,
    )


def restore_checkpoint(
    engine, checkpoint: Checkpoint, discarded_supersteps: int = 0
) -> None:
    """Rewind ``engine`` to ``checkpoint`` (full rollback).

    Everything the snapshot captured is put back — vertex states,
    ownership, inbox, aggregators, RNG, tracker — so re-execution from
    ``checkpoint.superstep`` is byte-for-byte identical to the
    original (crash-free) execution of those supersteps.

    ``discarded_supersteps`` is how many committed supersteps the
    caller threw away to get here; it is carried on the ``Rollback``
    trace event when the engine has a recorder attached.
    """
    from repro.bsp.vertex import VertexState  # local: avoid cycle

    states: Dict[Hashable, VertexState] = {}
    for snap in checkpoint.vertices:
        out_edges = dict(snap.out_edges)
        in_edges = (
            out_edges
            if snap.in_edges is None
            else dict(snap.in_edges)
        )
        state = VertexState(
            snap.vertex_id,
            value=cow_copy(snap.value),
            out_edges=out_edges,
            in_edges=in_edges,
        )
        state.halted = snap.halted
        states[snap.vertex_id] = state
    engine._states = states
    engine._owner = dict(checkpoint.owner)
    for worker, vids in zip(
        engine._workers, checkpoint.worker_vertex_ids
    ):
        worker.vertex_ids = list(vids)
        worker.reset_counters()
    # Re-adopt the execution path the snapshot was taken on (the dense
    # index is recompiled from the restored worker lists), then load
    # the undelivered inbox into that path's mailbox layout.
    engine._reset_execution_path(checkpoint.fast_active)
    engine._restore_inbox(
        {
            vid: [cow_copy(m) for m in msgs]
            for vid, msgs in checkpoint.inbox.items()
        }
    )
    engine._agg_finalized = cow_copy(checkpoint.agg_finalized)
    del engine._aggregate_history[checkpoint.history_len:]
    engine.rng.setstate(checkpoint.rng_state)
    engine._wake_all = checkpoint.wake_all
    if (
        engine._tracker is not None
        and checkpoint.bppa_observation is not None
    ):
        engine._tracker.observation = dataclasses.replace(
            checkpoint.bppa_observation
        )
    # Backends with external execution state (the process-parallel
    # pool keeps a live copy of every partition in its worker
    # processes) resynchronize it against the restored engine here.
    engine._post_restore_sync()
    trace = getattr(engine, "_trace", None)
    if trace is not None:
        from repro.trace.events import Rollback  # local: avoid cycle

        trace.emit(
            Rollback(
                superstep=checkpoint.superstep,
                restored_vertices=len(checkpoint.vertices),
                confined=False,
                discarded_supersteps=discarded_supersteps,
            )
        )


def restore_partition(engine, checkpoint: Checkpoint, worker: int) -> int:
    """Confined restore: rewind only ``worker``'s vertices.

    Used by confined recovery — the healthy workers keep their live
    state and only the crashed partition is reloaded from the
    checkpoint.  Topology must not have changed since the checkpoint
    (the engine falls back to full rollback otherwise).  Returns the
    number of vertices restored.
    """
    from repro.bsp.vertex import VertexState  # local: avoid cycle

    restored = 0
    for snap in checkpoint.vertices:
        if checkpoint.owner[snap.vertex_id] != worker:
            continue
        out_edges = dict(snap.out_edges)
        in_edges = (
            out_edges
            if snap.in_edges is None
            else dict(snap.in_edges)
        )
        state = VertexState(
            snap.vertex_id,
            value=cow_copy(snap.value),
            out_edges=out_edges,
            in_edges=in_edges,
        )
        state.halted = snap.halted
        engine._states[snap.vertex_id] = state
        restored += 1
    return restored
