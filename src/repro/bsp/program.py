"""The vertex-program abstraction: Pregel's ``vertex.compute()``.

Subclass :class:`VertexProgram` and implement :meth:`compute`; the
engine calls it once per active vertex per superstep with the messages
sent to that vertex in the previous superstep.  Superstep 0 runs on
every vertex with an empty message list, as in Pregel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, List

from repro.bsp.context import ComputeContext, MasterContext
from repro.bsp.vertex import VertexState
from repro.graph.graph import Graph
from repro.metrics.bppa import state_atoms


class VertexProgram(ABC):
    """Base class for all vertex-centric algorithms in this package.

    Subclasses may also carry *global* state (a phase marker advanced
    by :meth:`master_compute`, mirrors Giraph's master computation);
    such state must be treated as replicated-and-synchronized, never as
    a hidden channel between vertices.
    """

    #: Human-readable name used in reports and error messages.
    name: str = "vertex-program"

    #: Whether the process-parallel backend may execute this program's
    #: partitions in worker processes.  Declare ``False`` for programs
    #: whose ``compute`` breaks partition isolation: drawing from the
    #: run's shared ``ctx.random`` stream (its consumption order is
    #: inherently sequential across workers), or mutating shared
    #: program/topology state in place.  The parallel backend then
    #: degrades to the (byte-identical) serial path up front instead
    #: of discovering the violation mid-run.  RNG consumption is also
    #: detected dynamically as a safety net, so leaving this ``True``
    #: on a randomized program is slow (one discarded superstep) but
    #: never incorrect.
    parallel_safe: bool = True

    def initial_value(self, vertex_id: Hashable, graph: Graph) -> Any:
        """The value each vertex starts with (default ``None``)."""
        return None

    @abstractmethod
    def compute(
        self,
        vertex: VertexState,
        messages: List[Any],
        ctx: ComputeContext,
    ) -> None:
        """The per-vertex, per-superstep computation."""

    def master_compute(self, master: MasterContext) -> None:
        """Optional global hook run between supersteps."""

    def aggregators(self) -> dict:
        """Aggregators this program uses: ``{name: Aggregator}``."""
        return {}

    def state_size(self, vertex: VertexState) -> int:
        """Storage charged to this vertex for BPPA property P1.

        Default: the number of elementary items in ``vertex.value``.
        Programs whose value holds bookkeeping that a real
        implementation would not store may override.
        """
        return state_atoms(vertex.value)

    @classmethod
    def vectorizable(cls) -> bool:
        """Whether a vectorized kernel is registered for this exact
        program class (see :mod:`repro.bsp.kernels`).  Registration is
        per-class because a kernel bakes in one ``compute`` body's
        float operation sequence — a subclass overriding ``compute``
        must register its own kernel to opt in.
        """
        from repro.bsp.kernels import has_vectorized_kernel

        return has_vectorized_kernel(cls)
