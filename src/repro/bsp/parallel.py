"""Process-parallel execution backend for the Pregel engine.

:class:`ParallelPregelEngine` runs the dense fast path's per-worker
compute loops in **real OS processes** (one per simulated worker) while
keeping every observable byte of a run — ``PregelResult.values``,
``RunStats``, BPPA observations, the aggregate history, and the fault
draw sequence — identical to the serial
:class:`~repro.bsp.engine.PregelEngine`, which remains the default
backend and the correctness oracle (``docs/parallel_backend.md``).

Architecture
------------

The coordinator (this process) stays authoritative: it owns the full
vertex-state dict, the mailboxes, aggregators, RNG, checkpoint store
and fault injector, exactly as the serial engine does.  Only the
*compute pass* of a superstep is farmed out:

* at pool start every worker rank receives its dense partition — the
  ``[range_start, range_stop)`` slice of vertex states, the compiled
  dense adjacency, the shared ``idx_of``/``owner_of`` tables, the
  program, the combiner, and the run RNG state.  When the run's graph
  is a file-backed :class:`~repro.graph.snapshot.CsrSnapshot` the
  pickled topology never crosses the pipe at all: the rank receives
  the snapshot *path* plus its slice's mutable values, opens the file
  itself (the mmap'd adjacency pages are shared read-only across
  ranks) and rederives states, dense index, and compiled adjacency
  locally (:func:`_expand_snapshot_init`), so coordinator and rank
  memory stay bounded by the partition, not the graph;
* each superstep the coordinator ships ``(superstep, wake_all,
  finalized aggregates, this rank's inbound slots, program state if it
  changed)`` to every rank, and each rank runs **the same compute loop
  as the serial fast path** (:class:`_PartitionRuntime` mirrors
  ``_enqueue_fast`` / ``_fanout_fast`` & co. line for line) against
  its private accumulator arrays;
* the coordinator then collects the per-rank effect sets **in fixed
  worker-rank order** and replays them into its own engine state: new
  vertex values and halted flags, per-``(rank, destination)``
  accumulator slots, first-touch destination order, aggregator
  contributions, BPPA tracker rows, mutation logs, and the per-worker
  counters.

Because the serial engine *also* executes workers in rank order, the
rank-ordered merge reconstructs exactly the global send order, the
``_out_dirty`` first-touch order (= the reference outbox's key
insertion order, which fixes the fault-injection draw sequence), the
aggregator reduce order (contributions are replayed through
``engine._aggregate`` on the coordinator, so even non-associative
reducers see the serial order), and the mutation-log append order.
Delivery, combining at delivery, master compute, mutation application,
checkpointing, and recovery all run the *unchanged* serial code on the
coordinator — there is nothing left to diverge.

Degrading to serial
-------------------

Real parallelism cannot be byte-identical when compute breaks
partition isolation, so the backend degrades to the serial path (it
*is* a ``PregelEngine``; degrading just means never consulting the
pool) instead of returning different bytes:

* programs flagged ``parallel_safe = False``, ``use_fast_path=False``,
  or ``confined_recovery`` — decided up front, the pool never spawns;
* an unpicklable program or a worker pipe failure — the pool is
  abandoned and the superstep re-executes serially;
* **RNG consumption**: each rank compares its RNG state before and
  after the pass.  Any draw means the program consumed the run's
  shared sequential stream, so the whole superstep's results are
  discarded, the pool shuts down permanently, and the superstep
  re-executes serially from the coordinator's (untouched) state;
* **topology mutation**: the serial engine already disengages the
  dense path at the first applied mutation; the override also shuts
  the pool down, and the reference dict path carries on serially.

Fault tolerance
---------------

Injected crashes become *real* process deaths: ``_recover`` kills the
crashed rank's OS process before running the stock rollback, and the
``_post_restore_sync`` hook (called by ``restore_checkpoint``)
respawns dead ranks from a fresh partition snapshot and reloads the
restored values into surviving ranks.  The dense index recompiled by
the restore is identical to the pool's (topology cannot have changed
while the pool is alive), so adjacency is never reshipped.

Supervision of the real processes is hang-aware: the coordinator
never blocks on a worker pipe.  Each rank runs a heartbeat thread
reporting a monotonic per-vertex progress counter; the coordinator
collects step replies with deadline polling and extends a rank's
deadline only when its progress *advances*, so a SIGKILLed rank is
detected immediately, an infinite-looping or sleeping rank within
``rank_stall_timeout``, and a merely slow rank is never killed.  A
failed rank aborts the (side-effect-free) collection, the whole pool
is torn down — ``kill()`` escalates SIGTERM to SIGKILL so even a rank
that ignores signals dies — and the pass retries on a fresh pool
after bounded exponential backoff, up to ``max_rank_restarts``
restarts per run; past the budget the run degrades to the
byte-identical serial path.  Because results merge only after every
rank replies, a failed pass leaves the coordinator at the exact
superstep boundary and the retry is byte-identical by construction.
An ``atexit`` sweep kills any pool the interpreter abandons, so no
orphan rank processes outlive an interrupted run.

Transport tiers
---------------

Two wire formats move a superstep across the rank boundary, selected
by the ``transport`` kwarg (``"auto"``/``"columnar"`` — the default —
or ``"pickle"``):

* **columnar** (:mod:`repro.bsp.shm_transport`): one shared-memory
  segment per pool, created by the coordinator and mapped once by
  every rank, carries inbound slot batches and effect-set columns as
  raw ``float64``/``int64`` lanes; the pipe moves only a small header
  of scalars and lane descriptors.  For fixed-width numeric workloads
  (PageRank, SSSP, WCC/hashmin) steady-state supersteps serialize
  nothing but that header.  Any column the codec cannot take — mixed
  or non-numeric types (e.g. BFS-tree's dict values), out-of-range
  ints, capacity overflow — rides the pipe pickled in the header's
  spill dict instead: degradation is per column and per superstep,
  never a mode switch, and the decoded structures are exactly what
  the pickle tier ships, so the rank-ordered merge (and with it byte
  identity) is untouched.  ``columnar_supersteps`` counts supersteps
  that crossed fully columnar in both directions on every rank.
* **pickle**: the original everything-through-the-pipe format, kept
  as the fallback tier and selectable outright for A/B measurement.

If the segment cannot be created (no shared-memory support) the pool
still runs on the pickle tier, recording why in
``transport_disabled_reason``.  Segment lifecycle is tied to the
pool's: every teardown route destroys it, each rank's orphan watchdog
unlinks it when the coordinator vanishes, and
:func:`repro.bsp.shm_transport.sweep_leaked_segments` reaps segments
whose creating process died without running either.

Wall-clock speedup is real but bounded by the host:
``RunStats.wall`` records per-rank compute seconds, barrier wait, and
per-rank pipe payload bytes — measurements excluded from the
byte-identity contract — and ``benchmarks/bench_engine.py
--parallel`` sweeps worker counts and transports into
``BENCH_parallel_shm.json``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import operator
import os
import pickle
import random
import threading
import time
import weakref
from multiprocessing import connection as mp_connection
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.bsp import shm_transport
from repro.bsp.context import ComputeContext
from repro.bsp.combiner import SumCombiner
from repro.bsp.engine import PregelEngine, PregelResult
from repro.bsp.kernels import (
    rank_compute_pass,
    rank_kernel_factory,
    rank_vector_allow,
)
from repro.bsp.vertex import VertexState
from repro.errors import MessageToUnknownVertexError
from repro.graph.graph import Graph
from repro.graph.partition import owner_for
from repro.graph.snapshot import CsrSnapshot, is_graph_snapshot
from repro.bsp.program import VertexProgram
from repro.trace.events import Handoff

#: Pickle protocol for all pool traffic and for the program-state
#: change detection blobs (highest = fastest, and both sides of every
#: comparison use the same protocol).
_PROTO = pickle.HIGHEST_PROTOCOL

#: Recognised values of the engine's ``transport`` kwarg.
TRANSPORTS = ("auto", "columnar", "pickle")


def _send_msg(conn, msg) -> int:
    """Ship one pipe message explicitly framed as a pickle blob;
    returns the blob length.  Framing the bytes ourselves (instead of
    ``Connection.send``'s implicit pickling) is what makes the
    per-superstep ``payload_bytes`` observable exact, not estimated."""
    blob = pickle.dumps(msg, _PROTO)
    conn.send_bytes(blob)
    return len(blob)


def _recv_msg(conn):
    return pickle.loads(conn.recv_bytes())


def default_start_method() -> str:
    """``"fork"`` where available (cheap: the child inherits loaded
    modules), else ``"spawn"``.  Both are supported and tested; pass
    ``mp_start_method="spawn"`` to force the portable one."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ---------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------


def _expand_snapshot_init(
    rank: int, init: Dict[str, Any]
) -> Dict[str, Any]:
    """Rebuild a standard init payload from a memory-mapped snapshot.

    When the run's graph is a file-backed
    :class:`~repro.graph.snapshot.CsrSnapshot`, the coordinator ships
    only the snapshot *path* plus the partitioner and this slice's
    values/halted flags; each rank opens the file itself (mmap — the
    adjacency pages are shared read-only across ranks, not copied) and
    rederives everything the pickle payload would have carried:

    * the dense index, by replaying the coordinator's own two-step
      construction — bucket ``snapshot.vertices()`` (insertion order)
      through the shared :func:`~repro.graph.partition.owner_for`
      rule, then concatenate the buckets exactly as
      :func:`~repro.graph.partition.build_dense_index` does;
    * this slice's vertex states, from the snapshot's ``*_edge_items``
      rows (the same rows ``StateStore`` read, so the dict order is
      byte-identical);
    * this slice's compiled adjacency, straight off the CSR columns
      (``out_row_positions`` mapped through the position→dense-index
      permutation — the same plan the coordinator's fabric compiled).

    The rederived slice boundary must equal the one the coordinator
    shipped; any mismatch (e.g. an unstable partitioner) raises, the
    init fails, and the engine degrades to the byte-identical serial
    path.
    """
    snap = CsrSnapshot.open(init["snapshot_path"])
    partitioner = init["partitioner"]
    num_workers: int = init["num_workers"]
    buckets: List[List[Hashable]] = [[] for _ in range(num_workers)]
    position: Dict[Hashable, int] = {}
    for pos, v in enumerate(snap.vertices()):
        position[v] = pos
        buckets[owner_for(v, partitioner, num_workers)].append(v)
    id_of: List[Hashable] = []
    idx_of: Dict[Hashable, int] = {}
    owner_of: List[int] = []
    ranges: List[Tuple[int, int]] = []
    for widx, bucket in enumerate(buckets):
        start = len(id_of)
        for vid in bucket:
            idx_of[vid] = len(id_of)
            id_of.append(vid)
            owner_of.append(widx)
        ranges.append((start, len(id_of)))
    if ranges[rank] != tuple(init["range"]):
        raise ValueError(
            f"rank {rank}: rederived slice {ranges[rank]} does not "
            f"match the coordinator's {tuple(init['range'])} — "
            "unstable partitioner?"
        )
    perm = [0] * len(id_of)
    for idx, vid in enumerate(id_of):
        perm[position[vid]] = idx
    start, stop = ranges[rank]
    directed = snap.directed
    values = init["values"]
    halted = init["halted"]
    snaps = []
    dense_out: List[Optional[List[int]]] = []
    remote_out: List[int] = []
    for off, idx in enumerate(range(start, stop)):
        vid = id_of[idx]
        out_edges = dict(snap.out_edge_items(vid))
        in_edges = (
            dict(snap.in_edge_items(vid)) if directed else None
        )
        snaps.append(
            (vid, values[off], out_edges, in_edges, halted[off])
        )
        nbrs = [
            perm[q] for q in snap.out_row_positions(position[vid])
        ]
        dense_out.append(nbrs)
        remote_out.append(
            sum(1 for j in nbrs if owner_of[j] != rank)
        )
    expanded = dict(init)
    expanded.update(
        num_vertices=len(id_of),
        idx_of=idx_of,
        owner_of=owner_of,
        states=snaps,
        dense_out=dense_out,
        remote_out=remote_out,
    )
    return expanded


class _PartitionRuntime:
    """One rank's resident partition plus the narrow engine contract
    :class:`~repro.bsp.context.ComputeContext` consumes.

    The send/fanout methods below mirror the serial engine's
    ``_enqueue_fast`` / ``_enqueue_fast_combining`` / ``_fanout_fast``
    / ``_fanout_fast_combining`` exactly — same slot occupancy
    encoding, same ``operator.add`` specialization for the stock
    :class:`SumCombiner`, same dense full-neighbor fanout branch, same
    partial-count commit on an unknown-target raise — so a vertex's
    observable effects are bit-for-bit what the serial pass would have
    produced.  Only the *location* of the accumulator differs: it is
    this rank's private array instead of ``engine._accs[rank]``, and
    the coordinator loads it into ``engine._accs[rank]`` afterwards.
    """

    def __init__(self, rank: int, init: Dict[str, Any]):
        self.rank = rank
        if "snapshot_path" in init:
            init = _expand_snapshot_init(rank, init)
        self.num_vertices: int = init["num_vertices"]
        self.idx_of: Dict[Hashable, int] = init["idx_of"]
        self.owner_of: List[int] = init["owner_of"]
        self.range_start, self.range_stop = init["range"]
        self.program: VertexProgram = init["program"]
        self.combiner = init["combiner"]
        self.track_bppa: bool = init["track_bppa"]
        # Shipped sorted; the index mapping is the columnar codec's
        # name lane (coordinator decodes with the same sorted list).
        agg_sorted = list(init["agg_names"])
        self.agg_names = frozenset(agg_sorted)
        self.agg_index = {
            name: i for i, name in enumerate(agg_sorted)
        }
        self.rng = random.Random()
        self.rng.setstate(init["rng_state"])
        self._rng_baseline = init["rng_state"]
        # My slice of the compiled dense adjacency, indexed by local
        # offset (dense idx - range_start).
        self.dense_out: List[Optional[List[int]]] = init["dense_out"]
        self.remote_out: List[int] = init["remote_out"]
        self.states: List[VertexState] = []
        self._load_states(init["states"])
        n = self.num_vertices
        self.acc: List[Any] = [None] * n
        self.cnt: Optional[List[int]] = (
            [0] * n if self.combiner is not None else None
        )
        self.acc_touched: List[int] = []
        self.out_pending = 0
        self.sent_logical = 0
        self.sent_remote = 0
        self.agg_log: List[Tuple[str, Any]] = []
        #: Monotonic count of vertices executed over the partition's
        #: lifetime, read by the heartbeat thread: an advancing value
        #: proves the rank is making progress, not merely alive.
        self.progress = 0
        self._cur_off = 0
        #: Lazily compiled vectorized kernel for this slice: ``None``
        #: until the first allowed superstep, ``False`` when the
        #: program has no rank kernel or compilation bailed.  Survives
        #: reload()s — the plan depends only on topology, which is
        #: frozen while the pool is alive; program parameters are read
        #: live on every pass.
        self._vector_kernel = None
        if self.combiner is not None:
            # Same SumCombiner specialization as the serial engine.
            if type(self.combiner) is SumCombiner:
                self._combine = operator.add
            else:
                self._combine = self.combiner.combine
            self._enqueue = self._enqueue_combining
            self._fanout = self._fanout_combining
        # (plain-path _enqueue/_fanout are the class methods)
        self.ctx = ComputeContext(self)

    def _load_states(self, snaps) -> None:
        states = []
        for vid, value, out_edges, in_edges, halted in snaps:
            state = VertexState(
                vid,
                value=value,
                out_edges=out_edges,
                in_edges=out_edges if in_edges is None else in_edges,
            )
            state.halted = halted
            states.append(state)
        self.states = states

    # -- engine contract (ComputeContext) ---------------------------

    def _enqueue(self, source, target, message) -> None:
        dst = self.idx_of.get(target)
        if dst is None:
            raise MessageToUnknownVertexError(target)
        bucket = self.acc[dst]
        if bucket is None:
            self.acc[dst] = [message]
            self.acc_touched.append(dst)
        else:
            bucket.append(message)
        self.out_pending += 1
        self.sent_logical += 1
        if self.owner_of[dst] != self.rank:
            self.sent_remote += 1

    def _enqueue_combining(self, source, target, message) -> None:
        dst = self.idx_of.get(target)
        if dst is None:
            raise MessageToUnknownVertexError(target)
        cnt = self.cnt
        c = cnt[dst]
        if c:
            self.acc[dst] = self._combine(self.acc[dst], message)
            cnt[dst] = c + 1
        else:
            self.acc[dst] = message
            cnt[dst] = 1
            self.acc_touched.append(dst)
        self.out_pending += 1
        self.sent_logical += 1
        if self.owner_of[dst] != self.rank:
            self.sent_remote += 1

    def _fanout(self, source, targets, message) -> int:
        off = self._cur_off
        acc = self.acc
        touched = self.acc_touched
        nbrs = self.dense_out[off]
        if (
            nbrs is not None
            and targets is self.states[off].out_edges
        ):
            for dst in nbrs:
                bucket = acc[dst]
                if bucket is None:
                    acc[dst] = [message]
                    touched.append(dst)
                else:
                    bucket.append(message)
            n = len(nbrs)
            self.sent_logical += n
            self.sent_remote += self.remote_out[off]
            self.out_pending += n
            return n
        idx_get = self.idx_of.get
        owner_of = self.owner_of
        rank = self.rank
        n = remote = 0
        try:
            for target in targets:
                dst = idx_get(target)
                if dst is None:
                    raise MessageToUnknownVertexError(target)
                bucket = acc[dst]
                if bucket is None:
                    acc[dst] = [message]
                    touched.append(dst)
                else:
                    bucket.append(message)
                if owner_of[dst] != rank:
                    remote += 1
                n += 1
        finally:
            # Commit partial counts on an unknown-target raise,
            # exactly as the serial fast path does.
            self.sent_logical += n
            self.sent_remote += remote
            self.out_pending += n
        return n

    def _fanout_combining(self, source, targets, message) -> int:
        off = self._cur_off
        acc = self.acc
        cnt = self.cnt
        touched = self.acc_touched
        combine = self._combine
        nbrs = self.dense_out[off]
        if (
            nbrs is not None
            and targets is self.states[off].out_edges
        ):
            for dst in nbrs:
                c = cnt[dst]
                if c:
                    acc[dst] = combine(acc[dst], message)
                    cnt[dst] = c + 1
                else:
                    acc[dst] = message
                    cnt[dst] = 1
                    touched.append(dst)
            n = len(nbrs)
            self.sent_logical += n
            self.sent_remote += self.remote_out[off]
            self.out_pending += n
            return n
        idx_get = self.idx_of.get
        owner_of = self.owner_of
        rank = self.rank
        n = remote = 0
        try:
            for target in targets:
                dst = idx_get(target)
                if dst is None:
                    raise MessageToUnknownVertexError(target)
                c = cnt[dst]
                if c:
                    acc[dst] = combine(acc[dst], message)
                    cnt[dst] = c + 1
                else:
                    acc[dst] = message
                    cnt[dst] = 1
                    touched.append(dst)
                if owner_of[dst] != rank:
                    remote += 1
                n += 1
        finally:
            self.sent_logical += n
            self.sent_remote += remote
            self.out_pending += n
        return n

    def _aggregate(self, name: str, value: Any) -> None:
        # Contributions are *recorded*, not reduced: the coordinator
        # replays them through the real aggregator registry in rank
        # order, so non-associative reducers see the serial order and
        # an unknown name raises the same KeyError the registry
        # lookup would.
        if name not in self.agg_names:
            raise KeyError(name)
        self.agg_log.append((name, value))

    # -- superstep execution ----------------------------------------

    def step(
        self,
        superstep: int,
        wake_all: bool,
        agg_prev: Dict[str, Any],
        inbound: List[Tuple[int, List[Any]]],
        program_state: Optional[Dict[str, Any]],
        allow_vector: bool = False,
    ) -> Dict[str, Any]:
        """Run my slice of one compute pass; return the effect set.

        The vertex loop itself lives with the other kernels
        (:func:`repro.bsp.kernels.rank_compute_pass`) — same visit
        order, wake/halt transitions, work accounting, and tracker
        feed as the serial dense pass.  When the coordinator granted
        ``allow_vector`` (it evaluated the kernel's applicability
        against the authoritative fabric state), the slice runs
        through the program's vectorized rank kernel instead — byte-
        identical by construction, reported via ``kernel_tier``.
        """
        if program_state is not None:
            # master_compute mutated the program since the last ship.
            self.program.__dict__.clear()
            self.program.__dict__.update(program_state)
        msgs_of = dict(inbound)
        ctx = self.ctx
        ctx._begin_superstep(superstep, agg_prev)
        kernel = None
        if allow_vector:
            kernel = self._vector_kernel
            if kernel is None:
                factory = rank_kernel_factory(type(self.program))
                kernel = (
                    factory(self) if factory is not None else None
                ) or False
                self._vector_kernel = kernel
        if kernel:
            kernel_tier = "vectorized"
            active, work, executed, tracker_rows = kernel.run(
                self, superstep, msgs_of
            )
        else:
            kernel_tier = "dense"
            active, work, executed, tracker_rows = rank_compute_pass(
                self, wake_all, msgs_of
            )
        start = self.range_start
        # Detach the touched accumulator slots for shipping.
        touched = self.acc_touched
        acc = self.acc
        payloads = [acc[d] for d in touched]
        if self.cnt is not None:
            cnt = self.cnt
            counts: Optional[List[int]] = [cnt[d] for d in touched]
            for d in touched:
                acc[d] = None
                cnt[d] = 0
        else:
            counts = None
            for d in touched:
                acc[d] = None
        self.acc_touched = []
        rng_state = self.rng.getstate()
        drew = rng_state != self._rng_baseline
        self._rng_baseline = rng_state
        states = self.states
        resp = {
            "active": active,
            "work": work,
            "sent_logical": self.sent_logical,
            "sent_remote": self.sent_remote,
            "pending": self.out_pending,
            "values": [
                (idx, states[idx - start].value) for idx in executed
            ],
            "halted": [
                idx for idx in executed if states[idx - start].halted
            ],
            "touched": touched,
            "payloads": payloads,
            "counts": counts,
            "aggs": self.agg_log,
            "tracker": tracker_rows,
            "mutations": ctx._take_mutations(),
            "drew": drew,
            "kernel_tier": kernel_tier,
        }
        self.agg_log = []
        self.sent_logical = 0
        self.sent_remote = 0
        self.out_pending = 0
        return resp

    def reload(self, payload: Dict[str, Any]) -> None:
        """Adopt post-rollback values/flags (topology is unchanged
        while the pool is alive, so edges stay resident)."""
        start = self.range_start
        states = self.states
        for idx, value, halted in payload["states"]:
            state = states[idx - start]
            state.value = value
            state.halted = halted
        self.rng.setstate(payload["rng_state"])
        self._rng_baseline = payload["rng_state"]
        self.program.__dict__.clear()
        self.program.__dict__.update(payload["program_state"])


def _worker_main(
    rank: int, conn, hb_interval: float = 0.25
) -> None:
    """Command loop of one pool process (top-level: spawn-safe).

    A daemon heartbeat thread reports the partition's progress
    counter every ``hb_interval`` seconds while a step is running, so
    the coordinator can tell a hung rank (progress frozen) from a
    slow one (progress advancing).  All pipe writes share one lock so
    a heartbeat never interleaves with a reply.

    The same thread is the orphan watchdog: when the parent pid
    changes the coordinator died (e.g. SIGKILLed mid-run), and this
    rank must not linger — under the fork start method sibling ranks
    inherit each other's pipe fds, so the EOF a dead coordinator
    would normally deliver can be held open indefinitely by a
    sibling.  ``os._exit`` keeps the no-orphans guarantee regardless;
    before exiting, the watchdog unlinks the pool's shared-memory
    segment (idempotently — every exiting rank may try), because the
    dead coordinator's own cleanup hooks never ran.
    """
    part: Optional[_PartitionRuntime] = None
    seg: Optional[shm_transport.ColumnarSegment] = None
    send_lock = threading.Lock()
    stepping = threading.Event()
    stop = threading.Event()
    parent_pid = os.getppid()

    def _send(msg) -> None:
        blob = pickle.dumps(msg, _PROTO)
        with send_lock:
            conn.send_bytes(blob)

    def _heartbeat() -> None:
        while not stop.wait(hb_interval):
            if os.getppid() != parent_pid:
                # Orphaned: the coordinator is gone and cannot unlink
                # the segment itself.
                if seg is not None:
                    try:
                        seg.destroy()
                    except Exception:
                        pass
                os._exit(0)
            if part is None or not stepping.is_set():
                continue
            try:
                _send(("hb", part.progress))
            except Exception:
                return

    threading.Thread(
        target=_heartbeat,
        daemon=True,
        name=f"repro-bsp-hb-{rank}",
    ).start()
    try:
        while True:
            try:
                msg = _recv_msg(conn)
            except (EOFError, OSError):
                return
            cmd = msg[0]
            try:
                if cmd == "init":
                    part = _PartitionRuntime(rank, msg[1])
                    desc = msg[1].get("shm")
                    if seg is not None:
                        seg.close()
                        seg = None
                    if desc is not None:
                        seg = shm_transport.ColumnarSegment.attach(
                            desc
                        )
                    _send(("ready", rank))
                elif cmd == "step":
                    (
                        superstep, wake_all, agg_prev,
                        inbound, state, allow_vector,
                    ) = msg[1:]
                    if seg is not None and type(inbound) is tuple:
                        inbound = shm_transport.decode_inbound(
                            seg, rank, inbound
                        )
                    t0 = time.perf_counter()
                    stepping.set()
                    try:
                        resp = part.step(
                            superstep, wake_all, agg_prev,
                            inbound, state, allow_vector,
                        )
                    finally:
                        stepping.clear()
                    seconds = time.perf_counter() - t0
                    resp["seconds"] = seconds
                    reply = ("ok", resp)
                    if seg is not None:
                        # Per-column degradation happens inside
                        # encode_reply; a whole-reply failure (lane
                        # overflow, unexpected type) falls back to
                        # the pickle tier for this superstep.
                        try:
                            header = shm_transport.encode_reply(
                                seg, rank, resp, part.agg_index
                            )
                            header["seconds"] = seconds
                            reply = ("okc", header)
                        except Exception:
                            reply = ("ok", resp)
                    _send(reply)
                elif cmd == "reload":
                    part.reload(msg[1])
                    _send(("ready", rank))
                elif cmd == "stop":
                    stop.set()
                    with send_lock:
                        conn.close()
                    return
            except BaseException as exc:  # ship failure, stay alive
                try:
                    _send(("err", exc))
                except Exception:
                    _send(("err", RuntimeError(repr(exc))))
    finally:
        if seg is not None:
            seg.close()


# ---------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------


class _WorkerLink:
    """A pool process and the coordinator's end of its pipe."""

    def __init__(self, mp_ctx, rank: int, hb_interval: float = 0.25):
        self.rank = rank
        self.conn, child_conn = mp_ctx.Pipe()
        self.process = mp_ctx.Process(
            target=_worker_main,
            args=(rank, child_conn, hb_interval),
            daemon=True,
            name=f"repro-bsp-worker-{rank}",
        )
        self.process.start()
        child_conn.close()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop the process.  SIGTERM first; if the rank has not
        exited shortly after — hung in compute, or ignoring signals —
        escalate to SIGKILL, so nothing survives ``kill()``."""
        process = self.process
        try:
            process.terminate()
            process.join(timeout=2)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass

    def stop(self) -> None:
        try:
            _send_msg(self.conn, ("stop",))
        except Exception:
            pass
        try:
            self.process.join(timeout=1)
        except Exception:
            pass
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except Exception:
                pass


class _RankFailure(Exception):
    """Internal: a pool rank died or stalled mid-operation.  Carries
    what the supervisor needs to account and restart; never escapes
    :class:`ParallelPregelEngine`."""

    def __init__(self, rank: int, reason: str):
        super().__init__(f"rank {rank} {reason}")
        self.rank = rank
        self.reason = reason


#: Engines with live pools, swept at interpreter exit.  Weak refs: a
#: collected engine already tore its pool down in ``__del__``.
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _kill_leaked_pools() -> None:
    """atexit hook: hard-kill any pool the interpreter abandons, so
    an interrupted run never leaves orphan rank processes behind."""
    for engine in list(_LIVE_POOLS):
        try:
            engine._teardown_links()
        except Exception:
            pass


def _track_pool(engine: "ParallelPregelEngine") -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_kill_leaked_pools)
        _ATEXIT_REGISTERED = True
    _LIVE_POOLS.add(engine)


class ParallelPregelEngine(PregelEngine):
    """:class:`PregelEngine` whose fast compute pass runs on a
    persistent pool of worker processes, one per simulated worker.

    Accepts every ``PregelEngine`` parameter plus:

    mp_start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default
        :func:`default_start_method`.
    rank_stall_timeout:
        Seconds a rank may go without *progress* before the
        coordinator declares it hung and restarts the pool (default
        60).  Progress is a per-vertex counter shipped by the rank's
        heartbeat thread, so a slow-but-advancing rank is never
        killed.
    rank_heartbeat_interval:
        Seconds between a rank's progress heartbeats (default 0.25).
    max_rank_restarts:
        Pool restarts allowed per run after rank deaths or stalls
        before degrading to the serial path for good (default 2).
    rank_restart_backoff:
        Base of the bounded exponential backoff slept before each
        pool restart (default 0.05s; doubles per restart, capped at
        2s).
    transport:
        ``"auto"`` / ``"columnar"`` (equivalent defaults): supersteps
        cross the rank boundary as shared-memory columns with a tiny
        pipe header, degrading per column to pickled spill for
        non-conforming data.  ``"pickle"``: the original fully
        pickled pipe traffic, kept for A/B measurement and as the
        tier columnar falls back to when shared memory is
        unavailable (see :attr:`transport_disabled_reason`).

    The engine degrades to the byte-identical serial path whenever
    process parallelism cannot preserve the contract; inspect
    :attr:`parallel_disabled_reason` / :attr:`parallel_supersteps` /
    :attr:`rank_restarts` / :attr:`rank_failures` to see what a run
    actually did, and :attr:`transport_tier` /
    :attr:`columnar_supersteps` / :attr:`pickle_supersteps` for how
    its bytes moved.
    """

    backend_name = "parallel"

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        *args,
        mp_start_method: Optional[str] = None,
        rank_stall_timeout: float = 60.0,
        rank_heartbeat_interval: float = 0.25,
        max_rank_restarts: int = 2,
        rank_restart_backoff: float = 0.05,
        transport: str = "auto",
        **kwargs,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got "
                f"{transport!r}"
            )
        if rank_stall_timeout <= 0:
            raise ValueError(
                "rank_stall_timeout must be > 0, got "
                f"{rank_stall_timeout!r}"
            )
        if rank_heartbeat_interval <= 0:
            raise ValueError(
                "rank_heartbeat_interval must be > 0, got "
                f"{rank_heartbeat_interval!r}"
            )
        if max_rank_restarts < 0:
            raise ValueError(
                "max_rank_restarts must be >= 0, got "
                f"{max_rank_restarts!r}"
            )
        if rank_restart_backoff < 0:
            raise ValueError(
                "rank_restart_backoff must be >= 0, got "
                f"{rank_restart_backoff!r}"
            )
        super().__init__(graph, program, *args, **kwargs)
        self._mp_method = mp_start_method or default_start_method()
        self._rank_stall_timeout = float(rank_stall_timeout)
        self._rank_heartbeat_interval = float(rank_heartbeat_interval)
        self._max_rank_restarts = int(max_rank_restarts)
        self._rank_restart_backoff = float(rank_restart_backoff)
        #: Init/reload replies get a generous fixed deadline: setup
        #: has no progress counter to extend it with.
        self._pool_setup_timeout = max(
            120.0, float(rank_stall_timeout)
        )
        self._transport = (
            "columnar" if transport == "auto" else transport
        )
        self._segment: Optional[
            shm_transport.ColumnarSegment
        ] = None
        self._agg_list: List[str] = []
        self._links: Optional[List[_WorkerLink]] = None
        self._pool_disabled = False
        self._program_blob: Optional[bytes] = None
        #: Ship init payloads as a snapshot path instead of pickled
        #: per-vertex state; decided at pool start (file-backed
        #: snapshot graph + picklable partitioner).
        self._ship_snapshot = False
        #: Pool restarts performed after rank deaths/stalls.
        self.rank_restarts = 0
        #: One ``(superstep, rank, reason)`` per detected failure.
        self.rank_failures: List[Tuple[int, int, str]] = []
        #: Supersteps whose compute pass actually ran on the pool.
        self.parallel_supersteps = 0
        #: Pool supersteps that crossed the boundary fully columnar —
        #: both directions shared-memory lanes, nothing pickled but
        #: the header — on every rank.
        self.columnar_supersteps = 0
        #: Why the columnar tier is unavailable (shared memory could
        #: not be set up); ``None`` while it works or was never
        #: requested.  Distinct from ``parallel_disabled_reason``:
        #: losing the columnar tier only drops to the pickle tier,
        #: the pool keeps running.
        self.transport_disabled_reason: Optional[str] = None
        #: Why the pool is (or became) unused; None while eligible.
        self.parallel_disabled_reason: Optional[str] = None
        if not getattr(program, "parallel_safe", True):
            self._disable_pool("program declares parallel_safe=False")
        elif not self._fast_enabled:
            self._disable_pool(
                "reference execution path forced"
                if not self._confined_recovery
                else "confined recovery forces the reference path"
            )

    # -- pool management --------------------------------------------

    @property
    def parallel_active(self) -> bool:
        """True while the process pool is alive."""
        return self._links is not None

    @property
    def transport_tier(self) -> str:
        """``"columnar"`` or ``"pickle"`` — the tier pool supersteps
        use (individual columns can still spill to the pipe; see
        :attr:`columnar_supersteps` for the all-columnar count)."""
        if (
            self._transport == "pickle"
            or self.transport_disabled_reason is not None
        ):
            return "pickle"
        return "columnar"

    @property
    def pickle_supersteps(self) -> int:
        """Pool supersteps that moved at least one pickled column (or
        ran on the pickle tier outright)."""
        return self.parallel_supersteps - self.columnar_supersteps

    def _destroy_segment(self) -> None:
        seg, self._segment = self._segment, None
        if seg is not None:
            seg.destroy()

    def _disable_pool(self, reason: str) -> None:
        self._pool_disabled = True
        if self.parallel_disabled_reason is None:
            self.parallel_disabled_reason = reason
            if self._trace is not None:
                # Degradations are backend-specific by nature, so the
                # Handoff event is excluded from cross-backend
                # modeled-trace equality; -1 marks a degradation
                # decided before the first superstep ran.
                self._trace.emit(
                    Handoff(
                        superstep=getattr(
                            self._ctx, "superstep", -1
                        ),
                        from_path="parallel",
                        to_path="serial",
                        reason=reason,
                    )
                )

    def _init_payload(self, rank: int) -> Dict[str, Any]:
        fabric = self._fabric
        dense = fabric.dense
        start, stop = dense.ranges[rank]
        dense_states = fabric.dense_states
        if self._ship_snapshot:
            # Out-of-core shipping: the rank opens the memory-mapped
            # snapshot itself (_expand_snapshot_init) and rederives
            # topology, adjacency, and the dense index locally; only
            # this slice's mutable run state crosses the pipe.
            return {
                "snapshot_path": self._graph.path,
                "partitioner": self._partitioner,
                "num_workers": self._num_workers,
                "range": (start, stop),
                "values": [
                    dense_states[idx].value
                    for idx in range(start, stop)
                ],
                "halted": [
                    dense_states[idx].halted
                    for idx in range(start, stop)
                ],
                "program": self._program,
                "combiner": self._combiner,
                "track_bppa": self._tracker is not None,
                "agg_names": sorted(self._aggregators),
                "rng_state": self.rng.getstate(),
                "shm": (
                    None
                    if self._segment is None
                    else self._segment.descriptor
                ),
            }
        snaps = []
        for idx in range(start, stop):
            state = dense_states[idx]
            aliased = state.in_edges is state.out_edges
            snaps.append(
                (
                    state.id,
                    state.value,
                    state.out_edges,
                    None if aliased else state.in_edges,
                    state.halted,
                )
            )
        return {
            "num_vertices": len(dense.id_of),
            "idx_of": dense.idx_of,
            "owner_of": dense.owner_of,
            "range": (start, stop),
            "states": snaps,
            "dense_out": fabric.dense_out[start:stop],
            "remote_out": fabric.remote_out[start:stop],
            "program": self._program,
            "combiner": self._combiner,
            "track_bppa": self._tracker is not None,
            "agg_names": sorted(self._aggregators),
            "rng_state": self.rng.getstate(),
            "shm": (
                None
                if self._segment is None
                else self._segment.descriptor
            ),
        }

    def _reload_payload(self, rank: int) -> Dict[str, Any]:
        fabric = self._fabric
        dense = fabric.dense
        start, stop = dense.ranges[rank]
        dense_states = fabric.dense_states
        return {
            "states": [
                (
                    idx,
                    dense_states[idx].value,
                    dense_states[idx].halted,
                )
                for idx in range(start, stop)
            ],
            "rng_state": self.rng.getstate(),
            "program_state": getattr(self._program, "__dict__", {}),
        }

    def _start_pool(self) -> bool:
        """Spawn one process per worker and ship the partitions.
        Returns False (and disables the pool) on any failure."""
        try:
            self._program_blob = pickle.dumps(
                getattr(self._program, "__dict__", {}), _PROTO
            )
            pickle.dumps(self._program, _PROTO)
        except Exception as exc:
            self._disable_pool(f"program not picklable: {exc!r}")
            return False
        self._agg_list = sorted(self._aggregators)
        self._ship_snapshot = False
        if (
            is_graph_snapshot(self._graph)
            and self._graph.path is not None
        ):
            # Snapshot shipping additionally needs the partitioner on
            # the rank side; an unpicklable one just falls back to the
            # pickled-state payload, it does not cost the pool.
            try:
                pickle.dumps(self._partitioner, _PROTO)
            except Exception:
                pass
            else:
                self._ship_snapshot = True
        if (
            self._transport == "columnar"
            and self.transport_disabled_reason is None
        ):
            # Losing shared memory only costs the columnar tier —
            # the pool still runs on the pickle tier.
            try:
                dense = self._fabric.dense
                self._segment = shm_transport.ColumnarSegment(
                    len(dense.id_of),
                    dense.ranges,
                    combining=self._combiner is not None,
                    tracking=self._tracker is not None,
                )
            except Exception as exc:
                self._segment = None
                self.transport_disabled_reason = (
                    f"shared memory unavailable: {exc!r}"
                )
        links: List[_WorkerLink] = []
        try:
            mp_ctx = multiprocessing.get_context(self._mp_method)
            for rank in range(self._num_workers):
                links.append(
                    _WorkerLink(
                        mp_ctx, rank, self._rank_heartbeat_interval
                    )
                )
            for link in links:
                _send_msg(
                    link.conn,
                    ("init", self._init_payload(link.rank)),
                )
            for link in links:
                reply = self._recv_ready(link)
                if reply[0] != "ready":
                    raise reply[1]
        except Exception as exc:
            for link in links:
                link.kill()
            self._destroy_segment()
            self._disable_pool(f"pool startup failed: {exc!r}")
            return False
        self._links = links
        _track_pool(self)
        return True

    def _recv_ready(self, link: _WorkerLink) -> Tuple:
        """One non-heartbeat reply from ``link``, polled with a
        deadline instead of a blocking ``recv`` — a rank that dies or
        wedges during init/reload must not wedge the coordinator."""
        deadline = time.monotonic() + self._pool_setup_timeout
        conn = link.conn
        while True:
            try:
                if conn.poll(0.05):
                    msg = _recv_msg(conn)
                    if msg[0] != "hb":
                        return msg
                    continue
                dead = (
                    not link.process.is_alive()
                    and not conn.poll(0)
                )
            except (EOFError, OSError) as exc:
                raise _RankFailure(
                    link.rank, f"pipe closed during setup ({exc!r})"
                )
            if dead:
                raise _RankFailure(
                    link.rank, "process died during setup"
                )
            if time.monotonic() > deadline:
                raise _RankFailure(
                    link.rank,
                    "stalled during setup: no reply within "
                    f"{self._pool_setup_timeout:g}s",
                )

    def _shutdown_pool(self, reason: Optional[str] = None) -> None:
        """Stop every pool process; with ``reason`` the shutdown is
        permanent (subsequent supersteps run serially)."""
        if reason is not None:
            self._disable_pool(reason)
        links = self._links
        self._links = None
        if links is not None:
            for link in links:
                link.stop()
        self._destroy_segment()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self._shutdown_pool()
        except Exception:
            pass

    # -- engine overrides -------------------------------------------

    def run(self) -> PregelResult:
        try:
            return super().run()
        finally:
            self._shutdown_pool()

    def _compute_pass_fast(self, wake_all: bool) -> int:
        # Supervision loop: a rank death or stall aborts the (side-
        # effect-free) parallel pass and the pass retries on a fresh
        # pool until the restart budget runs out.
        while True:
            if self._pool_disabled:
                return super()._compute_pass_fast(wake_all)
            if self._links is None and not self._start_pool():
                return super()._compute_pass_fast(wake_all)
            try:
                return self._compute_pass_parallel(wake_all)
            except _RankFailure as failure:
                self._handle_rank_failure(failure)

    def _teardown_links(self) -> None:
        """Hard-kill every pool process without touching the
        degradation state (unlike ``_shutdown_pool``; also what the
        atexit sweep calls)."""
        links, self._links = self._links, None
        if links:
            for link in links:
                link.kill()
        self._destroy_segment()

    def _handle_rank_failure(self, failure: _RankFailure) -> None:
        """Account one rank failure, kill the whole pool, and either
        back off for a restart or degrade to serial for good.

        Nothing from the failed pass was applied — results merge only
        once every rank has replied — so the coordinator still holds
        the exact superstep boundary and the retry (parallel or
        serial) is byte-identical by construction.
        """
        superstep = getattr(self._ctx, "superstep", -1)
        self.rank_failures.append(
            (superstep, failure.rank, failure.reason)
        )
        self._teardown_links()
        self.rank_restarts += 1
        if self.rank_restarts > self._max_rank_restarts:
            self._disable_pool(
                f"rank {failure.rank} {failure.reason}; restart "
                f"budget ({self._max_rank_restarts}) exhausted"
            )
            return
        delay = min(
            self._rank_restart_backoff
            * (2 ** (self.rank_restarts - 1)),
            2.0,
        )
        if delay > 0:
            time.sleep(delay)

    def _disengage_fast_path(self) -> None:
        # A topology mutation froze the dense index out from under the
        # pool; the reference path carries on serially.
        self._shutdown_pool("topology mutation disengaged fast path")
        super()._disengage_fast_path()

    def _recover(self, crash, superstep, stats):
        # Make the injected crash a real process death before the
        # stock rollback; _post_restore_sync respawns the rank.
        if self._links is not None:
            self._links[crash.worker % self._num_workers].kill()
        return super()._recover(crash, superstep, stats)

    def _post_restore_sync(self) -> None:
        """Called by ``restore_checkpoint`` after a full rollback:
        respawn dead ranks with a fresh partition snapshot, reload the
        restored values into surviving ranks."""
        links = self._links
        if links is None:
            return
        if not self._fast_active:
            # Restored onto the reference path: nothing for a pool to
            # do for the rest of the run.
            self._shutdown_pool("restored onto the reference path")
            return
        try:
            reload_blob = pickle.dumps(
                getattr(self._program, "__dict__", {}), _PROTO
            )
            mp_ctx = multiprocessing.get_context(self._mp_method)
            respawned = set()
            for i, link in enumerate(links):
                if not link.alive:
                    link.kill()  # reap the pipe of the dead process
                    links[i] = _WorkerLink(
                        mp_ctx,
                        link.rank,
                        self._rank_heartbeat_interval,
                    )
                    respawned.add(link.rank)
            # Ship: freshly spawned ranks need the full partition,
            # survivors only the rolled-back values (topology cannot
            # have changed while the pool is alive).
            for link in links:
                if link.rank in respawned:
                    _send_msg(
                        link.conn,
                        ("init", self._init_payload(link.rank)),
                    )
                else:
                    _send_msg(
                        link.conn,
                        ("reload", self._reload_payload(link.rank)),
                    )
            for link in links:
                reply = self._recv_ready(link)
                if reply[0] != "ready":
                    raise reply[1]
            self._program_blob = reload_blob
        except Exception as exc:
            self._shutdown_pool(f"post-restore resync failed: {exc!r}")

    # -- the parallel compute pass ----------------------------------

    def _compute_pass_parallel(self, wake_all: bool) -> int:
        links = self._links
        fabric = self._fabric
        seg = self._segment
        # Program state may have been mutated by master_compute since
        # the last superstep; ship it only when its bytes changed.
        try:
            program_state = getattr(self._program, "__dict__", {})
            blob = pickle.dumps(program_state, _PROTO)
        except Exception as exc:
            self._shutdown_pool(
                f"program state not picklable: {exc!r}"
            )
            return super()._compute_pass_fast(wake_all)
        ship_state = None
        if blob != self._program_blob:
            self._program_blob = blob
            ship_state = program_state
        inbound = fabric.rank_inbound(len(links))
        superstep = self._ctx.superstep
        agg_prev = self._agg_finalized
        # Kernel-tier grant, decided here against the authoritative
        # fabric state so every rank takes the same path.
        allow_vector = rank_vector_allow(self, superstep, wake_all)
        down_bytes: List[int] = [0] * len(links)
        down_columnar = True
        for link in links:
            batch: Any = inbound[link.rank]
            if seg is not None:
                desc = shm_transport.encode_inbound(
                    seg, link.rank, batch
                )
                if desc is not None:
                    batch = desc
                else:
                    down_columnar = False
            try:
                down_bytes[link.rank] = _send_msg(
                    link.conn,
                    (
                        "step",
                        superstep,
                        wake_all,
                        agg_prev,
                        batch,
                        ship_state,
                        allow_vector,
                    ),
                )
            except (EOFError, OSError, BrokenPipeError) as exc:
                # A dead rank is a restartable failure, not a
                # permanent degradation: nothing was applied, and the
                # supervisor in _compute_pass_fast retries the pass.
                raise _RankFailure(
                    link.rank, f"pipe closed on dispatch ({exc!r})"
                )
        replies, reply_bytes = self._collect_step_replies(links)
        for reply in replies:  # rank order = serial raise order
            if reply[0] == "err":
                raise reply[1]
        all_columnar = seg is not None and down_columnar
        payloads: List[Dict[str, Any]] = []
        id_of = fabric.dense.id_of
        for link, reply in zip(links, replies):
            if reply[0] == "okc":
                resp, columnar = shm_transport.decode_reply(
                    seg, link.rank, reply[1], id_of, self._agg_list
                )
                all_columnar = all_columnar and columnar
            else:
                resp = reply[1]
                all_columnar = False
            payloads.append(resp)
        for rank, pl in enumerate(payloads):
            pl["payload_bytes"] = (
                down_bytes[rank] + reply_bytes[rank]
            )
        if any(pl["drew"] for pl in payloads):
            # The program consumed the run's shared RNG stream, whose
            # draw order is sequential across workers.  Discard the
            # superstep (nothing was applied; the coordinator RNG is
            # untouched) and re-execute serially.
            self._shutdown_pool(
                "program drew from the shared RNG stream"
            )
            return super()._compute_pass_fast(wake_all)
        if all_columnar:
            self.columnar_supersteps += 1
        return self._apply_parallel_results(payloads)

    def _collect_step_replies(
        self, links: List[_WorkerLink]
    ) -> Tuple[List[Tuple], List[int]]:
        """Collect one step reply per rank with hang-aware deadline
        polling instead of blocking ``recv`` calls; returns the
        replies and each reply's pipe blob length in rank order.

        A rank's deadline is extended only when its heartbeat
        progress counter *advances*: a rank that is alive but stuck
        (infinite loop, blocked syscall, endless sleep) exhausts its
        deadline even though heartbeats keep arriving, while a slow
        rank that keeps executing vertices is never killed.  A dead
        process or closed pipe raises :class:`_RankFailure` at the
        next poll tick.
        """
        timeout = self._rank_stall_timeout
        now = time.monotonic()
        pending: Dict[int, _WorkerLink] = {
            link.rank: link for link in links
        }
        link_of = {link.conn: link for link in links}
        replies: Dict[int, Tuple] = {}
        reply_bytes: Dict[int, int] = {}
        progress: Dict[int, int] = {
            link.rank: -1 for link in links
        }
        deadline: Dict[int, float] = {
            link.rank: now + timeout for link in links
        }
        while pending:
            ready = mp_connection.wait(
                [link.conn for link in pending.values()],
                timeout=0.05,
            )
            now = time.monotonic()
            for conn in ready:
                link = link_of[conn]
                rank = link.rank
                try:
                    while rank in pending and conn.poll(0):
                        raw = conn.recv_bytes()
                        msg = pickle.loads(raw)
                        if msg[0] == "hb":
                            if msg[1] > progress[rank]:
                                progress[rank] = msg[1]
                                deadline[rank] = now + timeout
                        else:
                            replies[rank] = msg
                            reply_bytes[rank] = len(raw)
                            del pending[rank]
                except (EOFError, OSError) as exc:
                    raise _RankFailure(
                        rank, f"process lost mid-step ({exc!r})"
                    )
            for rank, link in pending.items():
                try:
                    has_data = link.conn.poll(0)
                except (EOFError, OSError):
                    has_data = False
                if not link.process.is_alive() and not has_data:
                    raise _RankFailure(
                        rank, "process died mid-step"
                    )
                if now > deadline[rank]:
                    raise _RankFailure(
                        rank,
                        "stalled: no progress within "
                        f"{timeout:g}s",
                    )
        return (
            [replies[link.rank] for link in links],
            [reply_bytes[link.rank] for link in links],
        )

    def _apply_parallel_results(
        self, payloads: List[Dict[str, Any]]
    ) -> int:
        """Replay the per-rank effect sets into the coordinator's
        engine state, in fixed rank order (= serial execution order).
        Everything downstream — delivery, combining, fault draws,
        master compute — runs the unchanged serial code against this
        state."""
        fabric = self._fabric
        dense_states = fabric.dense_states
        tracker = self._tracker
        workers = self._workers
        accs = fabric.accs
        cnts = fabric.cnts
        # Same per-pass stamp discipline as the serial fast pass:
        # first touches dedup across ranks in rank order, recovering
        # the reference outbox's key insertion order.
        fabric.stamp += 1
        stamp = fabric.stamp
        seen = fabric.slot_seen
        dirty = fabric.out_dirty
        aggregate = self._aggregate
        mutation_log = self._ctx._mutations
        max_seconds = max(pl["seconds"] for pl in payloads)
        active_count = 0
        total_pending = 0
        tiers = set()
        for rank, pl in enumerate(payloads):
            worker = workers[rank]
            worker.work = pl["work"]
            worker.sent_logical = pl["sent_logical"]
            worker.sent_remote = pl["sent_remote"]
            worker.wall_seconds = pl["seconds"]
            worker.barrier_seconds = max_seconds - pl["seconds"]
            worker.payload_bytes = pl.get("payload_bytes", 0)
            worker.kernel_tier = tier = pl.get("kernel_tier", "dense")
            tiers.add(tier)
            active_count += pl["active"]
            total_pending += pl["pending"]
            for idx, value in pl["values"]:
                state = dense_states[idx]
                state.value = value
                state.halted = False
            for idx in pl["halted"]:
                dense_states[idx].halted = True
            acc = accs[rank]
            touched = pl["touched"]
            if cnts is not None:
                cnt = cnts[rank]
                for dst, payload, count in zip(
                    touched, pl["payloads"], pl["counts"]
                ):
                    acc[dst] = payload
                    cnt[dst] = count
            else:
                for dst, payload in zip(touched, pl["payloads"]):
                    acc[dst] = payload
            for dst in touched:
                if seen[dst] != stamp:
                    seen[dst] = stamp
                    dirty.append(dst)
            if fabric.memory_budget is not None and touched:
                # Same spill point as the serial flush: the lane is
                # complete, delivery has not read it yet.
                fabric.account_lane(rank, touched)
            if tracker is not None and pl["tracker"]:
                for vid, sent, received, ops, size in pl["tracker"]:
                    tracker.record_vertex(
                        vid, sent, received, ops, size
                    )
            for name, value in pl["aggs"]:
                aggregate(name, value)
            mut = pl["mutations"]
            if mut is not None:
                mutation_log.remove_edges.extend(mut.remove_edges)
                mutation_log.remove_vertices.extend(
                    mut.remove_vertices
                )
                mutation_log.add_vertices.extend(mut.add_vertices)
                mutation_log.add_edges.extend(mut.add_edges)
        fabric.out_pending = total_pending
        in_slots = fabric.in_slots
        for idx in fabric.in_dirty:
            in_slots[idx] = None
        fabric.in_dirty = []
        self.parallel_supersteps += 1
        self._kernel_tier = (
            "mixed" if len(tiers) > 1 else next(iter(tiers), "dense")
        )
        return active_count


#: The name the issue/docs use for the backend class.
ParallelBackend = ParallelPregelEngine
