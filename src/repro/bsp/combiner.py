"""Pregel combiners: sender-side message reduction.

When a program's messages to a common destination can be folded into
one (min, max, sum, …) a combiner cuts network traffic.  The engine
applies the combiner per ``(sending worker, destination vertex)`` pair,
mirroring Pregel's worker-local combining, and records both the logical
message count (what the program emitted — used for local work ``w``)
and the combined network count (what crosses the wire — used for the
``h``-relation in the cost model).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any


class Combiner(ABC):
    """A commutative, associative binary fold over messages."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Fold two messages addressed to the same vertex into one."""


class MinCombiner(Combiner):
    """Keep the smallest message (Hash-Min, SSSP)."""

    def combine(self, a, b):
        return a if a <= b else b


class MaxCombiner(Combiner):
    """Keep the largest message."""

    def combine(self, a, b):
        return a if a >= b else b


class SumCombiner(Combiner):
    """Add messages (PageRank mass, counting)."""

    def combine(self, a, b):
        return a + b
