"""Pregel combiners: sender-side message reduction.

When a program's messages to a common destination can be folded into
one (min, max, sum, …) a combiner cuts network traffic.  The engine
applies the combiner per ``(sending worker, destination vertex)`` pair,
mirroring Pregel's worker-local combining, and records both the logical
message count (what the program emitted — used for local work ``w``)
and the combined network count (what crosses the wire — used for the
``h``-relation in the cost model).

The engine folds at one of two points depending on its execution path
(see ``docs/performance.md``):

* the **reference dict path** buffers every logical message as a
  ``(src_worker, message)`` tuple and folds at delivery time;
* the **dense fast path** folds *at send time* into a per-
  ``(destination, sending worker)`` slot, so a superstep buffers
  O(occupied slots) instead of O(logical messages).

Both paths fold messages in exactly the same (send) order, so a
combiner only needs to be deterministic — it does not need to be
commutative for the two paths to agree bit-for-bit (though Pregel
semantics still expect commutative + associative folds, since message
arrival order is unspecified in a real cluster).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional, Type, Union


class Combiner(ABC):
    """A commutative, associative binary fold over messages."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Fold two messages addressed to the same vertex into one."""


class MinCombiner(Combiner):
    """Keep the smallest message (Hash-Min, SSSP)."""

    def combine(self, a, b):
        return a if a <= b else b


class MaxCombiner(Combiner):
    """Keep the largest message."""

    def combine(self, a, b):
        return a if a >= b else b


class SumCombiner(Combiner):
    """Add messages (PageRank mass, counting)."""

    def combine(self, a, b):
        return a + b


#: Name -> class registry for CLI/bench surfaces that take a combiner
#: by name (``repro-table1``, ``benchmarks/bench_engine.py``).
COMBINERS: Dict[str, Type[Combiner]] = {
    "min": MinCombiner,
    "max": MaxCombiner,
    "sum": SumCombiner,
}


def resolve_combiner(
    spec: Union[None, str, Combiner, Type[Combiner]],
) -> Optional[Combiner]:
    """Normalize a combiner spec to an instance (or ``None``).

    Accepts ``None``, a registry name (``"min"``/``"max"``/``"sum"``),
    a :class:`Combiner` instance, or a :class:`Combiner` subclass.
    """
    if spec is None or isinstance(spec, Combiner):
        return spec
    if isinstance(spec, str):
        try:
            return COMBINERS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown combiner {spec!r}; "
                f"known: {sorted(COMBINERS)}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, Combiner):
        return spec()
    raise TypeError(f"cannot interpret {spec!r} as a combiner")
