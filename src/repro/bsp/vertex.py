"""Per-vertex runtime state held by the simulated Pregel workers."""

from __future__ import annotations

from typing import Any, Dict, Hashable, List


class VertexState:
    """The state a vertex program sees and mutates.

    Attributes
    ----------
    id:
        The vertex id (any hashable).
    value:
        The program-defined vertex value.  Programs may store any
        (nested) structure here; the BPPA checker sizes it each
        superstep via :func:`repro.metrics.bppa.state_atoms`.
    out_edges:
        ``{target_id: weight}``.  Programs may mutate this directly —
        Pregel allows local edge mutation (e.g. Luby's MIS deletes
        edges to vertices that joined the independent set).
    in_edges:
        ``{source_id: weight}``.  Populated for directed graphs so
        programs that must message predecessors (simulation, SCC) do
        not each need a discovery superstep; for undirected graphs it
        aliases ``out_edges``.
    halted:
        Set by :meth:`vote_to_halt`; cleared by the engine when a
        message arrives.
    """

    __slots__ = ("id", "value", "out_edges", "in_edges", "halted")

    def __init__(
        self,
        vertex_id: Hashable,
        value: Any = None,
        out_edges: Dict[Hashable, float] = None,
        in_edges: Dict[Hashable, float] = None,
    ):
        self.id = vertex_id
        self.value = value
        self.out_edges = out_edges if out_edges is not None else {}
        self.in_edges = (
            in_edges if in_edges is not None else self.out_edges
        )
        self.halted = False

    # ------------------------------------------------------------------

    def vote_to_halt(self) -> None:
        """Declare this vertex inactive until a message wakes it."""
        self.halted = True

    @property
    def active(self) -> bool:
        return not self.halted

    def out_degree(self) -> int:
        return len(self.out_edges)

    def in_degree(self) -> int:
        return len(self.in_edges)

    def neighbors(self) -> List[Hashable]:
        """Current out-neighbors (a list, safe to mutate edges while
        iterating over it)."""
        return list(self.out_edges)

    def sorted_neighbors(self) -> List[Hashable]:
        """Out-neighbors in id order — the adjacency-list order the
        Euler tour construction assumes."""
        return sorted(self.out_edges)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "halted" if self.halted else "active"
        return (
            f"<VertexState {self.id!r} value={self.value!r} "
            f"deg={len(self.out_edges)} {state}>"
        )
