"""A synchronous gather-apply-scatter (GAS) engine — the PowerGraph
paradigm the paper's §1 surveys as an alternative to Pregel.

Where a Pregel hub *receives* ``d(v)`` messages in one superstep (the
``h``-relation blow-up behind many of Table 1's P3 violations), GAS
reads neighbor state edge-parallel and pre-aggregates per worker:
each gather ships at most one partial aggregate per (destination,
source-worker) pair.  The engine simulates exactly that accounting,
reusing the BSP cost model, so the paradigm comparison in
``benchmarks/bench_gas.py`` is apples-to-apples with the Pregel runs.

Semantics per iteration (sync GAS):

1. **gather** — for every active vertex, fold
   ``gather(edge_source_view, weight)`` over its in-edges;
2. **apply** — compute the new vertex value from the old value and
   the folded aggregate;
3. **scatter** — if the program says the change is significant,
   activate the out-neighbors for the next iteration (one signal per
   out-edge).

The run ends when the active set empties (or ``max_iterations``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Set

from repro.bsp.worker import Worker
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats, SuperstepStats


@dataclass(frozen=True)
class NeighborView:
    """What gather may read about an edge's source vertex."""

    id: Hashable
    value: Any
    out_degree: int


class GASProgram(ABC):
    """A vertex program in the gather-apply-scatter decomposition."""

    name: str = "gas-program"

    @abstractmethod
    def initial_value(self, vertex_id: Hashable, graph: Graph) -> Any:
        """The value every vertex starts with."""

    @abstractmethod
    def gather(self, source: NeighborView, weight: float) -> Any:
        """The contribution of one in-edge."""

    @abstractmethod
    def fold(self, a: Any, b: Any) -> Any:
        """Combine two gather contributions (associative,
        commutative)."""

    def identity(self) -> Any:
        """The aggregate for a vertex with no in-edges (default
        ``None``)."""
        return None

    @abstractmethod
    def apply(self, vertex_id: Hashable, old: Any, total: Any) -> Any:
        """The new vertex value."""

    @abstractmethod
    def should_scatter(self, old: Any, new: Any) -> bool:
        """Whether the change must wake the out-neighbors."""


@dataclass
class GASResult:
    """Answers plus the same measurements Pregel runs report."""

    values: Dict[Hashable, Any]
    stats: RunStats
    #: False when the run stopped at ``max_iterations`` with vertices
    #: still active (PowerGraph-style graceful cap, not an error).
    converged: bool = True

    @property
    def num_iterations(self) -> int:
        return self.stats.num_supersteps


class GASEngine:
    """Run a :class:`GASProgram` with per-worker cost accounting."""

    def __init__(
        self,
        graph: Graph,
        program: GASProgram,
        num_workers: int = 4,
        partitioner=None,
        cost_model: Optional[BSPCostModel] = None,
        max_iterations: int = 100_000,
    ):
        self._graph = graph
        self._program = program
        self._num_workers = num_workers
        self._cost_model = cost_model or BSPCostModel()
        self._max_iterations = max_iterations
        partitioner = partitioner or HashPartitioner(num_workers)
        self._owner = {
            v: partitioner(v) % num_workers for v in graph.vertices()
        }
        self._workers = [Worker(i) for i in range(num_workers)]
        self._values: Dict[Hashable, Any] = {
            v: program.initial_value(v, graph)
            for v in graph.vertices()
        }
        self._out_degree = {
            v: graph.out_degree(v) for v in graph.vertices()
        }
        # Vertex-cut edge placement: host each edge at the worker of
        # its lower-degree endpoint, so high-degree vertices are the
        # ones mirrored — the PowerGraph heuristic that flattens hub
        # traffic.  ``_in_hosts[v]`` groups v's in-edges by hosting
        # worker.
        self._in_hosts: Dict[Hashable, Dict[int, list]] = {}
        for v in graph.vertices():
            groups: Dict[int, list] = {}
            dv = graph.total_degree(v)
            for u in graph.in_neighbors(v):
                du = graph.total_degree(u)
                host = self._owner[u] if du <= dv else self._owner[v]
                groups.setdefault(host, []).append(u)
            self._in_hosts[v] = groups

    def run(self) -> GASResult:
        graph = self._graph
        program = self._program
        values = self._values
        stats = RunStats(
            num_workers=self._num_workers,
            cost_model=self._cost_model,
        )
        active: Set[Hashable] = set(graph.vertices())

        for iteration in range(self._max_iterations):
            if not active:
                break
            for w in self._workers:
                w.reset_counters()
            next_active: Set[Hashable] = set()
            # Synchronous semantics: gathers read the previous
            # iteration's values; applies write a fresh buffer that
            # becomes visible only at the iteration boundary.
            new_values = dict(values)
            # PowerGraph mirror semantics.  Per iteration, network
            # traffic consists of (a) syncing a vertex value to each
            # worker hosting one of its edges (once per worker, not
            # per edge), (b) shipping one folded gather partial per
            # hosting worker to the gathering vertex's master, and
            # (c) one activation signal per (vertex, worker) pair.
            # This is what flattens the hub h-relation that Pregel
            # suffers.
            synced_values: Set = set()
            shipped_signals: Set = set()
            # Deterministic order regardless of set hashing.
            for v in sorted(active, key=repr):
                v_worker = self._owner[v]
                dst = self._workers[v_worker]
                total = program.identity()
                for host, sources in self._in_hosts[v].items():
                    host_worker = self._workers[host]
                    for u in sources:
                        src_worker = self._owner[u]
                        view = NeighborView(
                            id=u,
                            value=values[u],
                            out_degree=self._out_degree[u],
                        )
                        contribution = program.gather(
                            view, graph.weight(u, v)
                        )
                        total = (
                            contribution
                            if total is None
                            else program.fold(total, contribution)
                        )
                        # Edge-parallel local work at the hosting
                        # worker; logical/remote counts stay
                        # per-edge so they compare with Pregel.
                        host_worker.work += 1
                        self._workers[src_worker].sent_logical += 1
                        dst.received_logical += 1
                        if src_worker != v_worker:
                            self._workers[
                                src_worker
                            ].sent_remote += 1
                        # (a) value sync: u's value must exist at the
                        # hosting worker.
                        if src_worker != host:
                            key = (u, host)
                            if key not in synced_values:
                                synced_values.add(key)
                                self._workers[
                                    src_worker
                                ].sent_network += 1
                                host_worker.received_network += 1
                    # (b) one partial aggregate per hosting worker.
                    if host != v_worker:
                        host_worker.sent_network += 1
                        dst.received_network += 1
                # Apply.
                old = values[v]
                new = program.apply(v, old, total)
                new_values[v] = new
                dst.work += 1
                # Scatter: signal out-neighbors on significant change.
                if program.should_scatter(old, new):
                    for u in graph.neighbors(v):
                        next_active.add(u)
                        dst.sent_logical += 1
                        u_worker = self._owner[u]
                        self._workers[u_worker].received_logical += 1
                        if u_worker != v_worker:
                            dst.sent_remote += 1
                        # (c) activations of the same target from
                        # one worker collapse into one signal
                        # (mirror-side OR).
                        key = (u, v_worker)
                        if key not in shipped_signals:
                            shipped_signals.add(key)
                            dst.sent_network += 1
                            self._workers[
                                u_worker
                            ].received_network += 1
            ws = self._workers
            stats.supersteps.append(
                SuperstepStats(
                    superstep=iteration,
                    work=[w.work for w in ws],
                    sent_logical=[w.sent_logical for w in ws],
                    received_logical=[w.received_logical for w in ws],
                    sent_network=[w.sent_network for w in ws],
                    received_network=[
                        w.received_network for w in ws
                    ],
                    active_vertices=len(active),
                    sent_remote=[w.sent_remote for w in ws],
                )
            )
            values = new_values
            self._values = values
            active = next_active
        return GASResult(
            values=dict(values),
            stats=stats,
            converged=not active,
        )


def run_gas(
    graph: Graph, program: GASProgram, **engine_kwargs
) -> GASResult:
    """Convenience wrapper mirroring :func:`repro.bsp.run_program`."""
    return GASEngine(graph, program, **engine_kwargs).run()
