"""A synchronous gather-apply-scatter (GAS) engine — the PowerGraph
paradigm the paper's §1 surveys as an alternative to Pregel.

Where a Pregel hub *receives* ``d(v)`` messages in one superstep (the
``h``-relation blow-up behind many of Table 1's P3 violations), GAS
reads neighbor state edge-parallel and pre-aggregates per worker:
each gather ships at most one partial aggregate per (destination,
source-worker) pair.  The engine simulates exactly that accounting,
reusing the BSP cost model, so the paradigm comparison in
``benchmarks/bench_gas.py`` is apples-to-apples with the Pregel runs.

Semantics per iteration (sync GAS):

1. **gather** — for every active vertex, fold
   ``gather(edge_source_view, weight)`` over its in-edges;
2. **apply** — compute the new vertex value from the old value and
   the folded aggregate;
3. **scatter** — if the program says the change is significant,
   activate the out-neighbors for the next iteration (one signal per
   out-edge).

The run ends when the active set empties (or ``max_iterations``).

Hosted on the shared runtime (``docs/architecture.md``): the engine's
iteration is driven by a :class:`~repro.bsp.loop.SuperstepLoop` with
``on_limit="stop"`` (the iteration cap is a soft budget, not an
error), which brings the full Pregel fault-tolerance surface along —
``trace=`` lifecycle events reconcilable via
:func:`~repro.trace.recorder.stats_from_events`, ``fault_plan=`` with
crash rollback through the
:class:`~repro.bsp.state.SnapshotRecovery` payload snapshots, and
``checkpoint_interval=`` on the shared
:class:`~repro.bsp.loop.CheckpointPolicy` schedule.  Because message
faults are masked by reliable delivery and crash recovery replays
deterministically, any faulted GAS run that completes produces values
identical to the fault-free run.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Set

from repro.bsp.checkpoint import CheckpointStore, cow_copy
from repro.bsp.faults import (
    FaultInjector,
    FaultPlan,
    inject_network_faults,
)
from repro.bsp.loop import (
    CheckpointPolicy,
    SuperstepLoop,
    emit_superstep_commit,
    emit_superstep_start,
)
from repro.bsp.state import SnapshotRecovery
from repro.bsp.worker import Worker, superstep_profile
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, build_owner_map
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats
from repro.trace.recorder import TraceRecorder, get_default_trace


@dataclass(frozen=True)
class NeighborView:
    """What gather may read about an edge's source vertex."""

    id: Hashable
    value: Any
    out_degree: int


class GASProgram(ABC):
    """A vertex program in the gather-apply-scatter decomposition."""

    name: str = "gas-program"

    @abstractmethod
    def initial_value(self, vertex_id: Hashable, graph: Graph) -> Any:
        """The value every vertex starts with."""

    @abstractmethod
    def gather(self, source: NeighborView, weight: float) -> Any:
        """The contribution of one in-edge."""

    @abstractmethod
    def fold(self, a: Any, b: Any) -> Any:
        """Combine two gather contributions (associative,
        commutative)."""

    def identity(self) -> Any:
        """The aggregate for a vertex with no in-edges (default
        ``None``)."""
        return None

    @abstractmethod
    def apply(self, vertex_id: Hashable, old: Any, total: Any) -> Any:
        """The new vertex value."""

    @abstractmethod
    def should_scatter(self, old: Any, new: Any) -> bool:
        """Whether the change must wake the out-neighbors."""


@dataclass
class GASResult:
    """Answers plus the same measurements Pregel runs report."""

    values: Dict[Hashable, Any]
    stats: RunStats
    #: False when the run stopped at ``max_iterations`` with vertices
    #: still active (PowerGraph-style graceful cap, not an error).
    converged: bool = True

    @property
    def num_iterations(self) -> int:
        return self.stats.num_supersteps

    @property
    def num_supersteps(self) -> int:
        """Alias satisfying the shared
        :class:`~repro.bsp.result.RunResult` protocol."""
        return self.stats.num_supersteps


class GASEngine(SnapshotRecovery):
    """Run a :class:`GASProgram` with per-worker cost accounting.

    Accepts the shared fault-tolerance surface
    (``checkpoint_interval`` / ``fault_plan`` /
    ``max_recovery_attempts`` / ``trace``) with the same semantics as
    :class:`~repro.bsp.engine.PregelEngine`: crash faults roll the run
    back to the latest payload snapshot and replay deterministically;
    message faults only add retransmission cost.
    """

    backend_name = "gas"

    def __init__(
        self,
        graph: Graph,
        program: GASProgram,
        num_workers: int = 4,
        partitioner=None,
        cost_model: Optional[BSPCostModel] = None,
        max_iterations: int = 100_000,
        checkpoint_interval: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_recovery_attempts: int = 3,
        trace: Optional[TraceRecorder] = None,
    ):
        self._graph = graph
        self._program = program
        self._num_workers = num_workers
        self._cost_model = cost_model or BSPCostModel()
        self._max_iterations = max_iterations
        self._trace = trace if trace is not None else get_default_trace()
        partitioner = partitioner or HashPartitioner(num_workers)
        self._owner = build_owner_map(
            graph.vertices(), partitioner, num_workers
        )
        self._workers = [Worker(i) for i in range(num_workers)]
        self._values: Dict[Hashable, Any] = {
            v: program.initial_value(v, graph)
            for v in graph.vertices()
        }
        self._active: Set[Hashable] = set()
        self._out_degree = {
            v: graph.out_degree(v) for v in graph.vertices()
        }
        # Vertex-cut edge placement: host each edge at the worker of
        # its lower-degree endpoint, so high-degree vertices are the
        # ones mirrored — the PowerGraph heuristic that flattens hub
        # traffic.  ``_in_hosts[v]`` groups v's in-edges by hosting
        # worker.
        self._in_hosts: Dict[Hashable, Dict[int, list]] = {}
        for v in graph.vertices():
            groups: Dict[int, list] = {}
            dv = graph.total_degree(v)
            for u in graph.in_neighbors(v):
                du = graph.total_degree(u)
                host = self._owner[u] if du <= dv else self._owner[v]
                groups.setdefault(host, []).append(u)
            self._in_hosts[v] = groups

        # The shared supervision stack (loop / policy / injector /
        # snapshot store — see docs/architecture.md).
        self._injector = (
            FaultInjector(fault_plan, num_workers)
            if fault_plan is not None
            else None
        )
        self._ckpt_store = CheckpointStore()
        self._ckpt_costs: Dict[int, float] = {}
        self._exec_counts: Dict[int, int] = {}
        self._run_stats: Optional[RunStats] = None
        self._policy = CheckpointPolicy(
            checkpoint_interval, fault_plan, self._ckpt_store
        )
        self._loop = SuperstepLoop(
            max_supersteps=max_iterations,
            program_name=getattr(program, "name", "gas-program"),
            num_workers=num_workers,
            cost_model=self._cost_model,
            injector=self._injector,
            policy=self._policy,
            trace=self._trace,
            max_recovery_attempts=max_recovery_attempts,
            on_limit="stop",
        )

    # -- SnapshotRecovery payload hooks -----------------------------

    def _snapshot_payload(self) -> Dict[str, Any]:
        return {
            "values": {
                v: cow_copy(val) for v, val in self._values.items()
            },
            "active": set(self._active),
        }

    def _restore_payload(self, payload: Dict[str, Any]) -> None:
        self._values = {
            v: cow_copy(val)
            for v, val in payload["values"].items()
        }
        self._active = set(payload["active"])

    # -- the hosted iteration ---------------------------------------

    def run(self) -> GASResult:
        stats = RunStats(
            num_workers=self._num_workers,
            cost_model=self._cost_model,
        )
        self._run_stats = stats
        self._active = set(self._graph.vertices())
        self._loop.run(self, stats)
        return GASResult(
            values=dict(self._values),
            stats=stats,
            converged=not self._active,
        )

    def _execute_superstep(
        self, superstep: int, stats: RunStats
    ) -> bool:
        active = self._active
        if not active:
            return True
        graph = self._graph
        program = self._program
        values = self._values
        self._exec_counts[superstep] = (
            self._exec_counts.get(superstep, 0) + 1
        )
        trace = self._trace
        if trace is not None:
            emit_superstep_start(
                trace,
                superstep,
                self._exec_counts[superstep],
                "gas",
                self.backend_name,
            )
        for w in self._workers:
            w.reset_counters()
        seg_start = time.perf_counter()
        next_active: Set[Hashable] = set()
        # Synchronous semantics: gathers read the previous
        # iteration's values; applies write a fresh buffer that
        # becomes visible only at the iteration boundary.
        new_values = dict(values)
        # PowerGraph mirror semantics.  Per iteration, network
        # traffic consists of (a) syncing a vertex value to each
        # worker hosting one of its edges (once per worker, not
        # per edge), (b) shipping one folded gather partial per
        # hosting worker to the gathering vertex's master, and
        # (c) one activation signal per (vertex, worker) pair.
        # This is what flattens the hub h-relation that Pregel
        # suffers.
        synced_values: Set = set()
        shipped_signals: Set = set()
        # Deterministic order regardless of set hashing.
        for v in sorted(active, key=repr):
            v_worker = self._owner[v]
            dst = self._workers[v_worker]
            total = program.identity()
            for host, sources in self._in_hosts[v].items():
                host_worker = self._workers[host]
                for u in sources:
                    src_worker = self._owner[u]
                    view = NeighborView(
                        id=u,
                        value=values[u],
                        out_degree=self._out_degree[u],
                    )
                    contribution = program.gather(
                        view, graph.weight(u, v)
                    )
                    total = (
                        contribution
                        if total is None
                        else program.fold(total, contribution)
                    )
                    # Edge-parallel local work at the hosting
                    # worker; logical/remote counts stay
                    # per-edge so they compare with Pregel.
                    host_worker.work += 1
                    self._workers[src_worker].sent_logical += 1
                    dst.received_logical += 1
                    if src_worker != v_worker:
                        self._workers[
                            src_worker
                        ].sent_remote += 1
                    # (a) value sync: u's value must exist at the
                    # hosting worker.
                    if src_worker != host:
                        key = (u, host)
                        if key not in synced_values:
                            synced_values.add(key)
                            self._workers[
                                src_worker
                            ].sent_network += 1
                            host_worker.received_network += 1
                # (b) one partial aggregate per hosting worker.
                if host != v_worker:
                    host_worker.sent_network += 1
                    dst.received_network += 1
            # Apply.
            old = values[v]
            new = program.apply(v, old, total)
            new_values[v] = new
            dst.work += 1
            # Scatter: signal out-neighbors on significant change.
            if program.should_scatter(old, new):
                for u in graph.neighbors(v):
                    next_active.add(u)
                    dst.sent_logical += 1
                    u_worker = self._owner[u]
                    self._workers[u_worker].received_logical += 1
                    if u_worker != v_worker:
                        dst.sent_remote += 1
                    # (c) activations of the same target from
                    # one worker collapse into one signal
                    # (mirror-side OR).
                    key = (u, v_worker)
                    if key not in shipped_signals:
                        shipped_signals.add(key)
                        dst.sent_network += 1
                        self._workers[
                            u_worker
                        ].received_network += 1
        # The engine interleaves workers vertex-by-vertex, so the
        # measured wall is attributed to worker 0 (modeled quantities
        # are per-worker; wall is excluded from byte-identity).
        self._workers[0].wall_seconds = (
            time.perf_counter() - seg_start
        )
        entry = superstep_profile(
            self._workers,
            superstep,
            len(active),
            checkpoint_cost=self._ckpt_costs.get(superstep, 0.0),
            executions=self._exec_counts.get(superstep, 1),
        )
        # Injected message faults strike the iteration's network
        # traffic as one batch; reliable delivery masks them, so
        # this is pure cost accounting.
        inject_network_faults(
            self._injector,
            sum(entry.received_network),
            stats,
            trace,
            superstep,
        )
        stats.supersteps.append(entry)
        if trace is not None:
            emit_superstep_commit(
                trace,
                self._workers,
                entry,
                self._cost_model,
                sum(entry.received_logical),
            )
        self._values = new_values
        self._active = next_active
        return not next_active


def run_gas(
    graph: Graph, program: GASProgram, **engine_kwargs
) -> GASResult:
    """Convenience wrapper mirroring :func:`repro.bsp.run_program`."""
    return GASEngine(graph, program, **engine_kwargs).run()
