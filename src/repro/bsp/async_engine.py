"""An asynchronous executor (GraphLab-style) for GAS programs — the
third paradigm the paper's §1 surveys.

Asynchronous engines drop the superstep barrier: a scheduler hands out
one vertex at a time, its gather reads the *current* neighbor values,
and its scatter enqueues affected neighbors immediately.  For
monotone/contracting updates (shortest paths, components, PageRank)
this converges with far fewer total updates than the synchronous
wavefront — GraphLab's pitch, measurable here against the sync engines
on the same programs.

The accounting differs from BSP: there are no supersteps, so the
engine reports total *updates* (apply calls), *edge reads* (gather
work) and *signals* (scatter activations).  The benches compare these
against the synchronous engines' total work — barrier-free execution
trades the clean ``max(w, g·h, L)`` charge for update efficiency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Set

from repro.bsp.gas import GASProgram, NeighborView
from repro.graph.graph import Graph


@dataclass
class AsyncResult:
    """Answers plus the async engine's cost counters.

    ``converged`` is True when the scheduler queue drained (a genuine
    fixpoint) and False when the run stopped at ``max_updates`` — in
    that case ``values`` and the counters reflect the partial
    computation at the moment the budget ran out, so callers can
    inspect how far a capped run got instead of losing everything to
    an exception.
    """

    values: Dict[Hashable, Any]
    updates: int
    edge_reads: int
    signals: int
    converged: bool


class AsyncEngine:
    """FIFO-scheduled asynchronous execution of a
    :class:`~repro.bsp.gas.GASProgram`.

    The schedule is deterministic: vertices start enqueued in sorted
    order and re-enqueue on signal (at most one pending entry per
    vertex, like GraphLab's set-scheduler).
    """

    def __init__(
        self,
        graph: Graph,
        program: GASProgram,
        max_updates: int = 10_000_000,
    ):
        if max_updates < 0:
            raise ValueError(
                f"max_updates must be >= 0, got {max_updates}"
            )
        self._graph = graph
        self._program = program
        self._max_updates = max_updates

    def run(self) -> AsyncResult:
        """Execute to the fixpoint, or to the ``max_updates`` budget.

        A run that exhausts its budget returns the partial result with
        ``converged=False`` (it does not raise), so the update/read/
        signal counters of the truncated schedule are preserved.
        """
        graph = self._graph
        program = self._program
        values: Dict[Hashable, Any] = {
            v: program.initial_value(v, graph)
            for v in graph.vertices()
        }
        out_degree = {
            v: graph.out_degree(v) for v in graph.vertices()
        }
        queue = deque(sorted(graph.vertices(), key=repr))
        queued: Set[Hashable] = set(queue)
        updates = 0
        edge_reads = 0
        signals = 0

        converged = True
        while queue:
            if updates >= self._max_updates:
                converged = False
                break
            v = queue.popleft()
            queued.discard(v)
            total = program.identity()
            for u in graph.in_neighbors(v):
                view = NeighborView(
                    id=u,
                    value=values[u],
                    out_degree=out_degree[u],
                )
                contribution = program.gather(view, graph.weight(u, v))
                total = (
                    contribution
                    if total is None
                    else program.fold(total, contribution)
                )
                edge_reads += 1
            old = values[v]
            new = program.apply(v, old, total)
            values[v] = new
            updates += 1
            if program.should_scatter(old, new):
                for u in graph.neighbors(v):
                    signals += 1
                    if u not in queued:
                        queued.add(u)
                        queue.append(u)
        return AsyncResult(
            values=values,
            updates=updates,
            edge_reads=edge_reads,
            signals=signals,
            converged=converged,
        )


def run_async(
    graph: Graph, program: GASProgram, **engine_kwargs
) -> AsyncResult:
    """Convenience wrapper mirroring :func:`repro.bsp.run_gas`."""
    return AsyncEngine(graph, program, **engine_kwargs).run()
