"""An asynchronous executor (GraphLab-style) for GAS programs — the
third paradigm the paper's §1 surveys.

Asynchronous engines drop the superstep barrier: a scheduler hands out
one vertex at a time, its gather reads the *current* neighbor values,
and its scatter enqueues affected neighbors immediately.  For
monotone/contracting updates (shortest paths, components, PageRank)
this converges with far fewer total updates than the synchronous
wavefront — GraphLab's pitch, measurable here against the sync engines
on the same programs.

The accounting differs from BSP: there are no supersteps, so the
engine reports total *updates* (apply calls), *edge reads* (gather
work) and *signals* (scatter activations).  The benches compare these
against the synchronous engines' total work — barrier-free execution
trades the clean ``max(w, g·h, L)`` charge for update efficiency.

Hosted on the shared runtime (``docs/architecture.md``): the FIFO
schedule is chopped into *rounds* — each round drains the prefix of
the queue that existed when the round began, which is exactly
GraphLab's "iteration" notion for a FIFO set-scheduler.  Rounds play
the role supersteps play elsewhere: they are the unit of checkpoint
scheduling, crash recovery, trace lifecycle events, and ``RunStats``
entries, so ``trace=`` / ``fault_plan=`` / ``checkpoint_interval=``
behave identically across engines.  The update order — and therefore
every counter — is byte-identical to the un-hosted engine: round
boundaries only group the schedule, they never reorder it.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.bsp.checkpoint import CheckpointStore, cow_copy
from repro.bsp.faults import (
    FaultInjector,
    FaultPlan,
    inject_network_faults,
)
from repro.bsp.gas import GASProgram, NeighborView
from repro.bsp.loop import (
    CheckpointPolicy,
    SuperstepLoop,
    emit_superstep_commit,
    emit_superstep_start,
)
from repro.bsp.state import SnapshotRecovery
from repro.bsp.worker import Worker, superstep_profile
from repro.graph.graph import Graph
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats
from repro.trace.recorder import TraceRecorder, get_default_trace


@dataclass
class AsyncResult:
    """Answers plus the async engine's cost counters.

    ``converged`` is True when the scheduler queue drained (a genuine
    fixpoint) and False when the run stopped at ``max_updates`` — in
    that case ``values`` and the counters reflect the partial
    computation at the moment the budget ran out, so callers can
    inspect how far a capped run got instead of losing everything to
    an exception.
    """

    values: Dict[Hashable, Any]
    updates: int
    edge_reads: int
    signals: int
    converged: bool
    #: Per-round BSP-style accounting (one entry per scheduler round),
    #: giving the async engine cost-model parity with the sync engines.
    stats: Optional[RunStats] = None

    @property
    def num_supersteps(self) -> int:
        """Scheduler rounds executed (the async analogue of
        supersteps)."""
        return self.stats.num_supersteps if self.stats is not None else 0


class AsyncEngine(SnapshotRecovery):
    """FIFO-scheduled asynchronous execution of a
    :class:`~repro.bsp.gas.GASProgram`.

    The schedule is deterministic: vertices start enqueued in sorted
    order and re-enqueue on signal (at most one pending entry per
    vertex, like GraphLab's set-scheduler).

    Accepts the shared fault-tolerance surface
    (``checkpoint_interval`` / ``fault_plan`` /
    ``max_recovery_attempts`` / ``trace``), applied at round
    granularity.
    """

    backend_name = "async"

    def __init__(
        self,
        graph: Graph,
        program: GASProgram,
        max_updates: int = 10_000_000,
        cost_model: Optional[BSPCostModel] = None,
        checkpoint_interval: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_recovery_attempts: int = 3,
        trace: Optional[TraceRecorder] = None,
    ):
        if max_updates < 0:
            raise ValueError(
                f"max_updates must be >= 0, got {max_updates}"
            )
        self._graph = graph
        self._program = program
        self._max_updates = max_updates
        self._cost_model = cost_model or BSPCostModel()
        self._trace = trace if trace is not None else get_default_trace()

        # Scheduler state, (re)initialized per run and snapshotted by
        # the recovery layer.
        self._values: Dict[Hashable, Any] = {}
        self._out_degree: Dict[Hashable, int] = {}
        self._queue: deque = deque()
        self._queued: Set[Hashable] = set()
        self._updates = 0
        self._edge_reads = 0
        self._signals = 0
        self._converged = True

        # The shared supervision stack (loop / policy / injector /
        # snapshot store — see docs/architecture.md).  A single
        # logical worker runs the whole schedule; every round can
        # process at least one update, so ``max_updates + 1`` rounds
        # always suffice to reach the budget or the fixpoint.
        self._injector = (
            FaultInjector(fault_plan, 1)
            if fault_plan is not None
            else None
        )
        self._ckpt_store = CheckpointStore()
        self._ckpt_costs: Dict[int, float] = {}
        self._exec_counts: Dict[int, int] = {}
        self._run_stats: Optional[RunStats] = None
        self._workers = [Worker(0)]
        self._policy = CheckpointPolicy(
            checkpoint_interval, fault_plan, self._ckpt_store
        )
        self._loop = SuperstepLoop(
            max_supersteps=max_updates + 1,
            program_name=getattr(program, "name", "async-program"),
            num_workers=1,
            cost_model=self._cost_model,
            injector=self._injector,
            policy=self._policy,
            trace=self._trace,
            max_recovery_attempts=max_recovery_attempts,
            on_limit="stop",
        )

    # -- SnapshotRecovery payload hooks -----------------------------

    def _snapshot_payload(self) -> Dict[str, Any]:
        return {
            "values": {
                v: cow_copy(val) for v, val in self._values.items()
            },
            "queue": list(self._queue),
            "queued": set(self._queued),
            "updates": self._updates,
            "edge_reads": self._edge_reads,
            "signals": self._signals,
            "converged": self._converged,
        }

    def _restore_payload(self, payload: Dict[str, Any]) -> None:
        self._values = {
            v: cow_copy(val) for v, val in payload["values"].items()
        }
        self._queue = deque(payload["queue"])
        self._queued = set(payload["queued"])
        self._updates = payload["updates"]
        self._edge_reads = payload["edge_reads"]
        self._signals = payload["signals"]
        self._converged = payload["converged"]

    # -- the hosted schedule ----------------------------------------

    def run(self) -> AsyncResult:
        """Execute to the fixpoint, or to the ``max_updates`` budget.

        A run that exhausts its budget returns the partial result with
        ``converged=False`` (it does not raise), so the update/read/
        signal counters of the truncated schedule are preserved.
        """
        graph = self._graph
        program = self._program
        self._values = {
            v: program.initial_value(v, graph)
            for v in graph.vertices()
        }
        self._out_degree = {
            v: graph.out_degree(v) for v in graph.vertices()
        }
        self._queue = deque(sorted(graph.vertices(), key=repr))
        self._queued = set(self._queue)
        self._updates = 0
        self._edge_reads = 0
        self._signals = 0
        self._converged = True

        stats = RunStats(
            num_workers=1, cost_model=self._cost_model
        )
        self._run_stats = stats
        ran_out = not self._loop.run(self, stats)
        return AsyncResult(
            values=self._values,
            updates=self._updates,
            edge_reads=self._edge_reads,
            signals=self._signals,
            converged=self._converged and not ran_out,
            stats=stats,
        )

    def _execute_superstep(
        self, superstep: int, stats: RunStats
    ) -> bool:
        if not self._queue:
            return True
        if self._updates >= self._max_updates:
            self._converged = False
            return True
        self._exec_counts[superstep] = (
            self._exec_counts.get(superstep, 0) + 1
        )
        trace = self._trace
        if trace is not None:
            emit_superstep_start(
                trace,
                superstep,
                self._exec_counts[superstep],
                "async",
                self.backend_name,
            )
        graph = self._graph
        program = self._program
        values = self._values
        queue = self._queue
        queued = self._queued
        worker = self._workers[0]
        worker.reset_counters()
        seg_start = time.perf_counter()

        # Drain the prefix that existed at round start; signals raised
        # during the round land in the next round's prefix.
        round_size = len(queue)
        processed = 0
        for _ in range(round_size):
            if self._updates >= self._max_updates:
                break
            v = queue.popleft()
            queued.discard(v)
            total = program.identity()
            gathered = 0
            for u in graph.in_neighbors(v):
                view = NeighborView(
                    id=u,
                    value=values[u],
                    out_degree=self._out_degree[u],
                )
                contribution = program.gather(
                    view, graph.weight(u, v)
                )
                total = (
                    contribution
                    if total is None
                    else program.fold(total, contribution)
                )
                gathered += 1
            self._edge_reads += gathered
            old = values[v]
            new = program.apply(v, old, total)
            values[v] = new
            self._updates += 1
            processed += 1
            worker.work += 1 + gathered
            if program.should_scatter(old, new):
                for u in graph.neighbors(v):
                    self._signals += 1
                    # Signals stay on the single logical worker, so
                    # they are logical-only traffic: network counters
                    # stay at zero, as barrier-free shared-memory
                    # execution should.
                    worker.sent_logical += 1
                    worker.received_logical += 1
                    if u not in queued:
                        queued.add(u)
                        queue.append(u)

        worker.wall_seconds = time.perf_counter() - seg_start
        entry = superstep_profile(
            self._workers,
            superstep,
            processed,
            checkpoint_cost=self._ckpt_costs.get(superstep, 0.0),
            executions=self._exec_counts.get(superstep, 1),
        )
        inject_network_faults(
            self._injector,
            sum(entry.received_network),
            stats,
            trace,
            superstep,
        )
        stats.supersteps.append(entry)
        if trace is not None:
            emit_superstep_commit(
                trace,
                self._workers,
                entry,
                self._cost_model,
                sum(entry.received_logical),
            )
        # Decide termination here rather than in an extra (empty)
        # round, so the checkpoint policy never snapshots a round that
        # commits no entry.
        if not queue:
            return True
        if self._updates >= self._max_updates:
            self._converged = False
            return True
        return False


def run_async(
    graph: Graph, program: GASProgram, **engine_kwargs
) -> AsyncResult:
    """Convenience wrapper mirroring :func:`repro.bsp.run_gas`."""
    return AsyncEngine(graph, program, **engine_kwargs).run()
