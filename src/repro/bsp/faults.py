"""Deterministic, seed-driven fault injection for the BSP runtime.

The paper's subject systems are built for unreliable clusters: Pregel
checkpoints every few supersteps and rolls back on worker failure;
its delivery layer retransmits lost packets and deduplicates repeats.
This module simulates that failure environment *reproducibly*: a
:class:`FaultPlan` is a declarative description of what goes wrong,
and a :class:`FaultInjector` replays it from a seed, so every faulted
run is exactly repeatable.

Two fault families are modelled:

**Worker crashes** (:class:`CrashFault`) kill a worker at the start
of a given superstep.  The engine recovers by rolling back to the
last checkpoint and replaying (or by confined recovery — see
``docs/fault_tolerance.md``).  A crash spec fires ``times`` times:
with ``times=1`` the replayed superstep succeeds on the second
attempt; with ``times`` larger than the engine's retry budget the run
raises :class:`~repro.errors.RecoveryExhaustedError`.

**Message-level faults** (drop / duplicate / delay rates) strike the
simulated network during delivery.  Crucially they are *masked* by
the runtime's reliable-delivery protocol — dropped packets are
retransmitted, duplicates are discarded by sequence number, and a
late packet stalls the superstep barrier until it arrives — so they
distort only the *cost* of the run (extra network traffic, extra
synchronization latency), never its semantics.  This mirrors the real
systems, whose BSP barrier guarantees exactly-once logical delivery,
and is what makes the determinism oracle possible: any faulted run
that completes returns byte-identical values to the fault-free run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import WorkerCrashError


@dataclass(frozen=True)
class CrashFault:
    """Kill ``worker`` at the start of ``superstep``, ``times`` times.

    ``times`` counts *executions* of the superstep: after each crash
    the engine rolls back and re-executes, and the fault fires again
    until its budget is spent.
    """

    superstep: int
    worker: int = 0
    times: int = 1

    def __post_init__(self):
        if self.superstep < 0:
            raise ValueError("crash superstep must be >= 0")
        if self.worker < 0:
            raise ValueError("crash worker must be >= 0")
        if self.times < 1:
            raise ValueError("crash times must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seed-driven failure scenario.

    Attributes
    ----------
    seed:
        Seeds the injector's private RNG (independent of the engine's
        program RNG, so fault decisions never perturb program
        randomness).
    crashes:
        Worker-crash specs, any number, any supersteps.
    drop_rate:
        Probability a network message is lost in transit and must be
        retransmitted.
    duplicate_rate:
        Probability a network message arrives twice (the extra copy
        is detected and discarded).
    delay_rate:
        Probability a network message arrives one barrier-wait late;
        any late packet in a superstep stalls that barrier once.
    name:
        Label for reports.
    """

    seed: int = 0
    crashes: Tuple[CrashFault, ...] = ()
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    name: str = "fault-plan"

    def __post_init__(self):
        for rate_name in ("drop_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(
                    f"{rate_name} must be in [0, 1), got {rate}"
                )
        # Tolerate a list of crashes; store a tuple (frozen dataclass).
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def has_crashes(self) -> bool:
        return bool(self.crashes)

    @property
    def has_message_faults(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.delay_rate > 0.0
        )

    def describe(self) -> str:
        parts = []
        for c in self.crashes:
            times = f"x{c.times}" if c.times != 1 else ""
            parts.append(
                f"crash(w{c.worker}@s{c.superstep}{times})"
            )
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}")
        spec = ", ".join(parts) if parts else "no faults"
        return f"{self.name}[{spec}; seed={self.seed}]"


@dataclass
class DeliveryFaults:
    """What the network did to one superstep's delivery."""

    retransmitted: int = 0
    duplicated: int = 0
    delayed: int = 0

    @property
    def stalled(self) -> bool:
        """Did any late packet stall the superstep barrier?"""
        return self.delayed > 0

    @property
    def any(self) -> bool:
        """Did the network misbehave at all this superstep?  Guards
        the engine's ``FaultInjected`` trace emission."""
        return bool(
            self.retransmitted or self.duplicated or self.delayed
        )

    def absorb(self, other: "DeliveryFaults") -> None:
        """Accumulate another batch's outcomes into this one.

        Delivery code calls :meth:`FaultInjector.network_faults` once
        per destination batch and absorbs the results into a single
        per-superstep accumulator, then commits it via
        :meth:`FaultInjector.commit`.
        """
        self.retransmitted += other.retransmitted
        self.duplicated += other.duplicated
        self.delayed += other.delayed


class FaultInjector:
    """Replays a :class:`FaultPlan` against one engine run.

    One injector serves one run: crash budgets count down as the
    engine (re-)executes supersteps, and the private RNG advances one
    draw per potential message fault, so the whole failure trace is a
    pure function of ``(plan, execution order)``.
    """

    def __init__(self, plan: FaultPlan, num_workers: int = None):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._num_workers = num_workers
        # (superstep, worker) -> remaining firings, deterministic order.
        self._crash_budget: Dict[Tuple[int, int], int] = {}
        for crash in plan.crashes:
            worker = crash.worker
            if num_workers:
                worker %= num_workers
            key = (crash.superstep, worker)
            self._crash_budget[key] = (
                self._crash_budget.get(key, 0) + crash.times
            )

    # -- worker crashes -------------------------------------------------

    def begin_superstep(self, superstep: int) -> None:
        """Raise :class:`WorkerCrashError` if a crash fires here."""
        for key in sorted(self._crash_budget):
            s, worker = key
            if s != superstep or self._crash_budget[key] <= 0:
                continue
            self._crash_budget[key] -= 1
            raise WorkerCrashError(worker, superstep)

    def pending_crashes(self, superstep: int) -> int:
        """Remaining crash firings scheduled at ``superstep``."""
        return sum(
            left
            for (s, _), left in self._crash_budget.items()
            if s == superstep
        )

    # -- durable-checkpoint support -------------------------------------

    def snapshot_state(self) -> dict:
        """The injector's replay position, for a durable checkpoint.

        A resumed run must continue the fault trace exactly where the
        interrupted run left it: same RNG stream position, same
        remaining crash budgets.  Both halves are plain picklable
        values.
        """
        return {
            "rng_state": self._rng.getstate(),
            "crash_budget": dict(self._crash_budget),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a position captured by :meth:`snapshot_state`."""
        self._rng.setstate(state["rng_state"])
        self._crash_budget = dict(state["crash_budget"])

    # -- message-level faults -------------------------------------------

    def network_faults(self, num_messages: int) -> DeliveryFaults:
        """Decide the fate of ``num_messages`` network messages.

        One independent draw per configured fault family per message.
        The runtime masks every outcome (retransmit / dedup / barrier
        stall), so the return value is pure cost accounting.
        """
        plan = self.plan
        faults = DeliveryFaults()
        if not plan.has_message_faults or num_messages == 0:
            return faults
        rng = self._rng
        for _ in range(num_messages):
            if plan.drop_rate and rng.random() < plan.drop_rate:
                faults.retransmitted += 1
            if (
                plan.duplicate_rate
                and rng.random() < plan.duplicate_rate
            ):
                faults.duplicated += 1
            if plan.delay_rate and rng.random() < plan.delay_rate:
                faults.delayed += 1
        return faults

    def commit(self, faults: DeliveryFaults, stats) -> None:
        """Fold one superstep's accumulated faults into ``stats``.

        This is the single injection point shared by both of the
        engine's delivery implementations (reference dict mailboxes
        and dense slot mailboxes).  Injection is mailbox-layout
        agnostic: :meth:`network_faults` draws from counts alone, so
        as long as a delivery path presents the same per-destination
        batch sizes in the same order, the fault trace — and therefore
        the cost accounting — is identical.
        """
        stats.retransmitted_messages += faults.retransmitted
        stats.duplicate_messages += faults.duplicated
        if faults.delayed:
            stats.delay_stalls += 1


def inject_network_faults(
    injector, num_messages: int, stats, trace, superstep: int
) -> None:
    """Draw and commit one superstep's message-level faults in a
    single batch.

    The shared delivery-fault entry point for engines that account a
    superstep's network traffic as one batch (the GAS, block, and
    async engines); the Pregel fabric draws per destination instead
    but commits and traces through the same injector methods, so a
    faulted run's cost accounting and ``FaultInjected`` stream have
    the same shape on every engine.  No-op when ``injector`` is None.
    """
    if injector is None:
        return
    faults = injector.network_faults(num_messages)
    injector.commit(faults, stats)
    if trace is not None and faults.any:
        from repro.trace.events import FaultInjected

        trace.emit(
            FaultInjected(
                superstep=superstep,
                fault="network",
                retransmitted=faults.retransmitted,
                duplicated=faults.duplicated,
                delayed=faults.delayed,
            )
        )


# ---------------------------------------------------------------------
# Canonical plans (used by tests, the CLI smoke mode and the bench).
# ---------------------------------------------------------------------


def crash_plan(
    superstep: int, worker: int = 0, times: int = 1, seed: int = 0
) -> FaultPlan:
    """A single worker crash at ``superstep``."""
    return FaultPlan(
        seed=seed,
        crashes=(CrashFault(superstep, worker, times),),
        name="crash",
    )


def drop_plan(rate: float = 0.1, seed: int = 0) -> FaultPlan:
    """Lossy network: messages dropped (and retransmitted) at ``rate``."""
    return FaultPlan(seed=seed, drop_rate=rate, name="drop")


def duplicate_plan(rate: float = 0.1, seed: int = 0) -> FaultPlan:
    """Chatty network: messages duplicated (and deduplicated) at ``rate``."""
    return FaultPlan(seed=seed, duplicate_rate=rate, name="duplicate")


def chaos_plan(
    crash_superstep: int = 2,
    worker: int = 0,
    drop: float = 0.05,
    duplicate: float = 0.05,
    delay: float = 0.05,
    seed: int = 0,
) -> FaultPlan:
    """Everything at once: a crash plus a lossy, chatty, laggy network."""
    return FaultPlan(
        seed=seed,
        crashes=(CrashFault(crash_superstep, worker),),
        drop_rate=drop,
        duplicate_rate=duplicate,
        delay_rate=delay,
        name="chaos",
    )
