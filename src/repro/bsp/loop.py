"""The shared superstep loop: scheduling, barriers, halting guards,
checkpoint policy, and crash supervision for every engine.

This is the top layer of the decomposed runtime
(``docs/architecture.md``): one :class:`SuperstepLoop` drives the
Pregel engine, the GAS engine, the block engine, and (round-wise) the
async engine.  The loop owns the *control* concerns that every
execution model shares —

* the max-superstep guard (raise :class:`SuperstepLimitExceeded`, or
  stop gracefully for engines whose cap is a soft budget);
* the checkpoint schedule (:class:`CheckpointPolicy`);
* arming the fault injector at each superstep boundary;
* the crash-supervision protocol: attempt bookkeeping, the
  ``FaultInjected`` crash event, exponential backoff accounting, and
  dispatch to the host's rollback.

The *data* concerns stay with the host engine, reached through a
small host protocol (duck-typed; see :class:`SuperstepLoop.run`):

``_execute_superstep(superstep, stats) -> bool``
    Run one superstep; return True when the run is finished.
``_write_checkpoint(superstep, stats)``
    Snapshot engine state (only called when the policy says so).
``_latest_checkpoint() -> checkpoint | None``
    The most recent snapshot, for recovery.
``_recover(crash, superstep, stats) -> int``
    Handle an injected crash; return the superstep to resume at.
    Hosts normally delegate straight back to
    :meth:`SuperstepLoop.recover`, which runs the shared protocol and
    calls the host's ``_rollback(crash, superstep, stats, ckpt)``;
    the indirection exists so backends can hook crash handling (the
    process-parallel backend kills the crashed rank's real OS process
    before recovering).

The trace helpers at the bottom emit the per-superstep lifecycle
events (``SuperstepStart``, ``WorkerProfile``/``Barrier``/
``SuperstepEnd``) identically for every engine, so
:func:`repro.trace.recorder.stats_from_events` reconciles any hosted
run's trace with its ``RunStats``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bsp.faults import FaultInjector, FaultPlan
from repro.errors import (
    CheckpointError,
    RecoveryExhaustedError,
    SuperstepLimitExceeded,
    WorkerCrashError,
)
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats, SuperstepStats, peak_rss_bytes
from repro.trace.events import (
    Barrier,
    FaultInjected,
    SuperstepEnd,
    SuperstepStart,
    WorkerProfile,
)


class CheckpointPolicy:
    """When to snapshot: the schedule every engine shares.

    Periodic checkpoints when ``interval`` is set; a crash-bearing
    fault plan forces at least the superstep-0 baseline so the run can
    always recover.  Message-only fault plans need no checkpoints
    (reliable delivery masks them).
    """

    def __init__(
        self,
        interval: Optional[int],
        fault_plan: Optional[FaultPlan],
        store,
    ):
        if interval is not None and interval < 1:
            raise CheckpointError(
                "checkpoint_interval must be >= 1, got "
                f"{interval}"
            )
        self.interval = interval
        self.fault_plan = fault_plan
        self.store = store

    @property
    def enabled(self) -> bool:
        return self.interval is not None or (
            self.fault_plan is not None
            and self.fault_plan.has_crashes
        )

    def due(self, superstep: int) -> bool:
        if not self.enabled:
            return False
        latest = self.store.latest
        if latest is None:
            return True  # the superstep-0 baseline
        if self.interval is None:
            return False
        return superstep - latest.superstep >= self.interval


class SuperstepLoop:
    """Drives a host engine superstep by superstep.

    Parameters
    ----------
    max_supersteps:
        The superstep bound.
    program_name:
        Used in the :class:`SuperstepLimitExceeded` message.
    num_workers:
        For folding an injected crash's worker index into range.
    cost_model:
        Charges the exponential recovery backoff.
    injector:
        Optional :class:`~repro.bsp.faults.FaultInjector`; armed at
        every superstep boundary (raising ``WorkerCrashError`` for
        scheduled crashes).
    policy:
        Optional :class:`CheckpointPolicy`; when due, the host's
        ``_write_checkpoint`` runs *before* the superstep executes.
    trace:
        Optional recorder for crash ``FaultInjected`` events.
    max_recovery_attempts:
        Per-superstep crash budget before
        :class:`RecoveryExhaustedError`.
    on_limit:
        ``"raise"`` (Pregel: exceeding the bound is an error) or
        ``"stop"`` (GAS/block/async: the bound is a soft budget —
        ``run`` returns False and the host reports
        ``converged=False``).
    """

    def __init__(
        self,
        *,
        max_supersteps: int,
        program_name: str,
        num_workers: int,
        cost_model: BSPCostModel,
        injector: Optional[FaultInjector] = None,
        policy: Optional[CheckpointPolicy] = None,
        trace=None,
        max_recovery_attempts: int = 3,
        on_limit: str = "raise",
    ):
        if max_recovery_attempts < 0:
            raise ValueError(
                "max_recovery_attempts must be >= 0, got "
                f"{max_recovery_attempts}"
            )
        self.max_supersteps = max_supersteps
        self.program_name = program_name
        self.num_workers = num_workers
        self.cost_model = cost_model
        self.injector = injector
        self.policy = policy
        self.trace = trace
        self.max_recovery_attempts = max_recovery_attempts
        self.on_limit = on_limit
        #: superstep -> crash count (the per-superstep crash budget).
        self.crash_counts: Dict[int, int] = {}

    def run(self, host, stats: RunStats, start_superstep: int = 0) -> bool:
        """Supervise ``host`` to termination.

        Returns True when the host reported completion, False when the
        superstep bound was hit under ``on_limit="stop"``.  Under
        ``on_limit="raise"`` hitting the bound raises
        :class:`SuperstepLimitExceeded` instead.  ``start_superstep``
        is nonzero only when resuming from a durable checkpoint
        (:mod:`repro.bsp.durability`): the loop continues exactly
        where the interrupted run's schedule left off.
        """
        injector = self.injector
        policy = self.policy
        superstep = start_superstep
        while True:
            if superstep >= self.max_supersteps:
                if self.on_limit == "raise":
                    raise SuperstepLimitExceeded(
                        self.max_supersteps, self.program_name
                    )
                return False
            if policy is not None and policy.due(superstep):
                host._write_checkpoint(superstep, stats)
            try:
                if injector is not None:
                    injector.begin_superstep(superstep)
                done = host._execute_superstep(superstep, stats)
            except WorkerCrashError as crash:
                superstep = host._recover(crash, superstep, stats)
                continue
            superstep += 1
            if done:
                return True

    def recover(
        self,
        host,
        crash: WorkerCrashError,
        superstep: int,
        stats: RunStats,
    ) -> int:
        """The shared crash-supervision protocol.

        Bookkeeps the per-superstep attempt budget, emits the crash
        event, charges exponential backoff (the k-th retry of a
        superstep waits ``2^(k-1)`` sync periods) and hands off to the
        host's ``_rollback``; raises
        :class:`RecoveryExhaustedError` when the budget is exhausted
        or no checkpoint exists to restore from.
        """
        attempts = self.crash_counts.get(superstep, 0) + 1
        self.crash_counts[superstep] = attempts
        if self.trace is not None:
            self.trace.emit(
                FaultInjected(
                    superstep=superstep,
                    fault="crash",
                    worker=crash.worker % self.num_workers,
                    attempt=attempts,
                )
            )
        if attempts > self.max_recovery_attempts:
            raise RecoveryExhaustedError(superstep, attempts) from crash
        ckpt = host._latest_checkpoint()
        if ckpt is None:
            raise RecoveryExhaustedError(superstep, attempts) from crash

        stats.recovery_attempts += 1
        stats.backoff_cost += self.cost_model.L * (
            2 ** (attempts - 1)
        )
        return host._rollback(crash, superstep, stats, ckpt)


# ---------------------------------------------------------------------
# Shared trace emission
# ---------------------------------------------------------------------


def emit_superstep_start(
    trace, superstep: int, execution: int, path: str, backend: str
) -> None:
    """The superstep-opening lifecycle event, identical across
    engines (``path``/``backend`` are informational fields)."""
    trace.emit(
        SuperstepStart(
            superstep=superstep,
            execution=execution,
            path=path,
            backend=backend,
        )
    )


def emit_superstep_commit(
    trace,
    workers,
    entry: SuperstepStats,
    cost_model: BSPCostModel,
    delivered: int,
) -> None:
    """The barrier block: per-worker profiles in rank order, the
    h-relation, and the committed superstep's cost attribution.

    Byte-identical event construction for every engine, which is what
    lets :func:`repro.trace.recorder.stats_from_events` rebuild any
    hosted run's ``RunStats.supersteps`` from its trace.
    """
    superstep = entry.superstep
    for w in workers:
        trace.emit(
            WorkerProfile(
                superstep=superstep,
                worker=w.index,
                work=w.work,
                sent_logical=w.sent_logical,
                received_logical=w.received_logical,
                sent_network=w.sent_network,
                received_network=w.received_network,
                sent_remote=w.sent_remote,
                wall_seconds=w.wall_seconds,
                barrier_seconds=w.barrier_seconds,
                payload_bytes=w.payload_bytes,
                kernel_tier=w.kernel_tier,
            )
        )
    trace.emit(
        Barrier(
            superstep=superstep,
            h=entry.h,
            delivered=delivered,
            peak_rss_bytes=peak_rss_bytes() or 0,
        )
    )
    trace.emit(
        SuperstepEnd(
            superstep=superstep,
            active_vertices=entry.active_vertices,
            w=entry.w,
            h=entry.h,
            cost=entry.cost(cost_model),
            binding=entry.binding_term(cost_model),
            checkpoint_cost=entry.checkpoint_cost,
            execution=entry.executions,
        )
    )
