"""The simulated Pregel engine: synchronous BSP supersteps over
partitioned workers, with full cost instrumentation.

This is the substrate the paper's analysis assumes.  It executes real
``vertex.compute()`` programs with Pregel semantics:

* messages sent in superstep ``S`` are visible in superstep ``S + 1``;
* a vertex that votes to halt is skipped until a message wakes it;
* the run ends when every vertex is halted and no messages are in
  flight (or the master halts it);
* combiners reduce network traffic per (sending worker, destination);
* aggregator values reduced in ``S`` are readable in ``S + 1``;
* topology mutations requested in ``S`` apply before ``S + 1``.

Instead of real parallelism the engine *accounts* parallelism: every
superstep records per-worker local work ``w_i`` and message counts
``s_i``/``r_i``, from which the BSP cost model charges
``max(w, g·h, L)`` and the run reports the time-processor product
(§2.1).  An optional BPPA tracker observes per-vertex balance for the
§2.2 properties.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.bsp.combiner import Combiner
from repro.bsp.context import ComputeContext, MasterContext
from repro.bsp.program import VertexProgram
from repro.bsp.vertex import VertexState
from repro.bsp.worker import Worker
from repro.errors import SuperstepLimitExceeded
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner
from repro.metrics.bppa import BppaObservation, BppaTracker
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats, SuperstepStats


@dataclass
class PregelResult:
    """Everything a run produces: answers plus measurements."""

    values: Dict[Hashable, Any]
    stats: RunStats
    bppa: Optional[BppaObservation]
    aggregate_history: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        return self.stats.num_supersteps

    @property
    def time_processor_product(self) -> float:
        return self.stats.time_processor_product


class PregelEngine:
    """Runs one :class:`VertexProgram` over one graph.

    Parameters
    ----------
    graph:
        The input graph.  Undirected edges are materialized as two
        directed runtime edges, as Pregel does.
    program:
        The vertex program to execute.
    num_workers:
        The simulated processor count ``p``.
    partitioner:
        ``vertex_id -> worker_index`` (default: hash partitioning).
    combiner:
        Optional sender-side message combiner.
    cost_model:
        BSP parameters ``g`` and ``L`` (default ``g = L = 1``).
    max_supersteps:
        Hard bound; exceeding it raises
        :class:`~repro.errors.SuperstepLimitExceeded`.
    track_bppa:
        Record per-vertex balance factors (costs one ``state_size``
        call per active vertex per superstep).
    seed:
        Seed for ``ctx.random`` so randomized programs are
        reproducible.
    """

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        num_workers: int = 4,
        partitioner=None,
        combiner: Optional[Combiner] = None,
        cost_model: Optional[BSPCostModel] = None,
        max_supersteps: int = 100_000,
        track_bppa: bool = True,
        seed: int = 0,
    ):
        self._graph = graph
        self._program = program
        self._num_workers = num_workers
        self._combiner = combiner
        self._cost_model = cost_model or BSPCostModel()
        self._max_supersteps = max_supersteps
        self.rng = random.Random(seed)

        partitioner = partitioner or HashPartitioner(num_workers)
        self._partitioner = partitioner
        self._workers = [Worker(i) for i in range(num_workers)]
        self._states: Dict[Hashable, VertexState] = {}
        self._owner: Dict[Hashable, int] = {}
        self._build_states()

        self._tracker: Optional[BppaTracker] = None
        if track_bppa:
            degrees = {
                v: graph.total_degree(v) for v in graph.vertices()
            }
            self._tracker = BppaTracker(degrees)

        # Superstep-scoped structures.
        self._ctx = ComputeContext(self)
        self._inbox: Dict[Hashable, List[Any]] = {}
        self._outbox: Dict[Hashable, List] = {}
        self._aggregators = dict(getattr(program, "aggregators", dict)())
        self._agg_current: Dict[str, Any] = {}
        self._agg_finalized: Dict[str, Any] = {}
        self._wake_all = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_states(self) -> None:
        g = self._graph
        for v in g.vertices():
            out_edges = {u: g.weight(v, u) for u in g.neighbors(v)}
            if g.directed:
                in_edges = {u: g.weight(u, v) for u in g.in_neighbors(v)}
            else:
                in_edges = out_edges
            state = VertexState(
                v,
                value=self._program.initial_value(v, g),
                out_edges=out_edges,
                in_edges=in_edges,
            )
            self._states[v] = state
            widx = self._partitioner(v) % self._num_workers
            self._owner[v] = widx
            self._workers[widx].vertex_ids.append(v)

    # ------------------------------------------------------------------
    # Engine services used by ComputeContext
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._states)

    def has_vertex(self, vertex_id: Hashable) -> bool:
        return vertex_id in self._states

    def _enqueue(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        src_worker = self._owner[source]
        dst_worker = self._owner[target]
        self._outbox.setdefault(target, []).append(
            (src_worker, message)
        )
        self._workers[src_worker].sent_logical += 1
        self._workers[dst_worker].received_logical += 1
        if src_worker != dst_worker:
            self._workers[src_worker].sent_remote += 1

    def _aggregate(self, name: str, value: Any) -> None:
        agg = self._aggregators[name]
        current = self._agg_current.get(name, agg.initial())
        self._agg_current[name] = agg.reduce(current, value)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> PregelResult:
        """Execute the program to termination and return the result."""
        stats = RunStats(
            num_workers=self._num_workers, cost_model=self._cost_model
        )
        aggregate_history: List[Dict[str, Any]] = []
        program = self._program
        ctx = self._ctx
        tracker = self._tracker

        for superstep in range(self._max_supersteps):
            for w in self._workers:
                w.reset_counters()
            self._outbox = {}
            self._agg_current = {
                name: agg.initial()
                for name, agg in self._aggregators.items()
            }
            ctx._begin_superstep(superstep, self._agg_finalized)

            active_count = 0
            wake_all = self._wake_all or superstep == 0
            self._wake_all = False
            for worker in self._workers:
                for vid in worker.vertex_ids:
                    state = self._states.get(vid)
                    if state is None:
                        continue
                    messages = self._inbox.pop(vid, None)
                    if messages:
                        state.halted = False
                    elif state.halted and not wake_all:
                        continue
                    elif wake_all:
                        state.halted = False
                    messages = messages or []
                    active_count += 1
                    ctx._begin_vertex(state)
                    program.compute(state, messages, ctx)
                    ops = 1 + len(messages) + ctx._sent + ctx._charged
                    worker.work += ops
                    if tracker is not None:
                        tracker.record_vertex(
                            vid,
                            ctx._sent,
                            len(messages),
                            ops,
                            program.state_size(state),
                        )
            if tracker is not None:
                tracker.record_superstep()

            # Aggregators reduced this superstep become visible next.
            self._agg_finalized = dict(self._agg_current)
            aggregate_history.append(self._agg_finalized)

            pending = sum(len(v) for v in self._outbox.values())
            master = MasterContext(
                superstep=superstep,
                aggregates=self._agg_finalized,
                num_active=active_count,
                num_vertices=len(self._states),
                pending_messages=pending,
            )
            program.master_compute(master)

            self._apply_mutations()
            delivered = self._deliver()
            stats.supersteps.append(
                self._superstep_stats(superstep, active_count)
            )

            if master._halt:
                break
            if master._activate_all:
                self._wake_all = True
            if delivered == 0 and not self._wake_all:
                if all(s.halted for s in self._states.values()):
                    break
        else:
            raise SuperstepLimitExceeded(
                self._max_supersteps, program.name
            )

        if tracker is not None:
            tracker.observation.num_supersteps = stats.num_supersteps
        return PregelResult(
            values={v: s.value for v, s in self._states.items()},
            stats=stats,
            bppa=tracker.observation if tracker else None,
            aggregate_history=aggregate_history,
        )

    # ------------------------------------------------------------------
    # Superstep boundary
    # ------------------------------------------------------------------

    def _superstep_stats(
        self, superstep: int, active: int
    ) -> SuperstepStats:
        ws = self._workers
        return SuperstepStats(
            superstep=superstep,
            work=[w.work for w in ws],
            sent_logical=[w.sent_logical for w in ws],
            received_logical=[w.received_logical for w in ws],
            sent_network=[w.sent_network for w in ws],
            received_network=[w.received_network for w in ws],
            active_vertices=active,
            sent_remote=[w.sent_remote for w in ws],
        )

    def _apply_mutations(self) -> None:
        log = self._ctx._mutations
        if log.is_empty():
            return
        directed = self._graph.directed
        for u, v in log.remove_edges:
            src = self._states.get(u)
            if src is not None:
                src.out_edges.pop(v, None)
            if directed:
                dst = self._states.get(v)
                if dst is not None:
                    dst.in_edges.pop(u, None)
        for vid in log.remove_vertices:
            state = self._states.pop(vid, None)
            if state is None:
                continue
            for src in list(state.in_edges):
                other = self._states.get(src)
                if other is not None:
                    other.out_edges.pop(vid, None)
            if directed:
                for dst in list(state.out_edges):
                    other = self._states.get(dst)
                    if other is not None:
                        other.in_edges.pop(vid, None)
            self._outbox.pop(vid, None)
            self._inbox.pop(vid, None)
        for vid, value in log.add_vertices:
            if vid in self._states:
                continue
            state = VertexState(vid, value=value, out_edges={})
            if directed:
                state.in_edges = {}
            self._states[vid] = state
            widx = self._partitioner(vid) % self._num_workers
            self._owner[vid] = widx
            self._workers[widx].vertex_ids.append(vid)
        for u, v, weight in log.add_edges:
            src = self._states.get(u)
            if src is None:
                continue
            src.out_edges[v] = weight
            if directed:
                dst = self._states.get(v)
                if dst is not None:
                    dst.in_edges[u] = weight
        log.clear()

    def _deliver(self) -> int:
        """Move the outbox into next superstep's inbox.

        Applies the combiner per (destination, sending worker) and
        accounts network traffic.  Returns the number of logical
        messages delivered.
        """
        delivered = 0
        combiner = self._combiner
        inbox = self._inbox
        for target, entries in self._outbox.items():
            if target not in self._states:
                continue  # destination was removed by a mutation
            dst_worker = self._workers[self._owner[target]]
            if combiner is None:
                msgs = [m for _, m in entries]
                for src_worker, _ in entries:
                    self._workers[src_worker].sent_network += 1
                dst_worker.received_network += len(entries)
            else:
                groups: Dict[int, Any] = {}
                for src_worker, m in entries:
                    if src_worker in groups:
                        groups[src_worker] = combiner.combine(
                            groups[src_worker], m
                        )
                    else:
                        groups[src_worker] = m
                msgs = list(groups.values())
                for src_worker in groups:
                    self._workers[src_worker].sent_network += 1
                dst_worker.received_network += len(groups)
            inbox.setdefault(target, []).extend(msgs)
            delivered += len(msgs)
        self._outbox = {}
        return delivered


def run_program(
    graph: Graph, program: VertexProgram, **engine_kwargs
) -> PregelResult:
    """Convenience wrapper: build an engine and run ``program``."""
    return PregelEngine(graph, program, **engine_kwargs).run()
