"""The simulated Pregel engine: synchronous BSP supersteps over
partitioned workers, with full cost instrumentation.

This is the substrate the paper's analysis assumes.  It executes real
``vertex.compute()`` programs with Pregel semantics:

* messages sent in superstep ``S`` are visible in superstep ``S + 1``;
* a vertex that votes to halt is skipped until a message wakes it;
* the run ends when every vertex is halted and no messages are in
  flight (or the master halts it);
* combiners reduce network traffic per (sending worker, destination);
* aggregator values reduced in ``S`` are readable in ``S + 1``;
* topology mutations requested in ``S`` apply before ``S + 1``.

Instead of real parallelism the engine *accounts* parallelism: every
superstep records per-worker local work ``w_i`` and message counts
``s_i``/``r_i``, from which the BSP cost model charges
``max(w, g·h, L)`` and the run reports the time-processor product
(§2.1).  An optional BPPA tracker observes per-vertex balance for the
§2.2 properties.

The engine also models the fault-tolerance story the real systems
depend on (``docs/fault_tolerance.md``): with ``checkpoint_interval``
set it snapshots engine state at superstep boundaries
(:mod:`repro.bsp.checkpoint`), and with a ``fault_plan``
(:mod:`repro.bsp.faults`) it survives injected worker crashes by
rolling back to the last checkpoint and replaying — or, with
``confined_recovery``, by recomputing only the crashed partition from
logged messages.  Message drop/duplicate/delay faults are masked by
the simulated reliable-delivery layer, so *any* faulted run that
completes produces byte-identical values to the fault-free run; only
the cost accounting (``RunStats.recovery_overhead``) differs.

Execution paths (``docs/performance.md``, ``docs/parallel_backend.md``)
-----------------------------------------------------------------------

The engine owns two interchangeable implementations of its hot loop
(a third — real process parallelism over the dense layout — lives in
:mod:`repro.bsp.parallel` and is selected with ``backend="parallel"``
via :func:`create_engine`/:func:`run_program`):

* the **reference dict path** — hashable-keyed ``_inbox``/``_outbox``
  dicts, one ``(src_worker, message)`` tuple per logical message,
  combiner applied at delivery.  Always correct, engaged under
  topology mutations and confined recovery, and the oracle the fast
  path is tested against;
* the **dense fast path** — vertex ids compiled to contiguous ints
  (:class:`~repro.graph.partition.DenseIndex`), slot mailboxes (flat
  lists indexed by dense id with per-superstep dirty lists, so
  clearing is O(active) not O(n)), and the combiner folded *at send
  time* into a per-``(destination, sending worker)`` slot.

Both paths execute vertices, fold combiners, deliver messages and
draw injected faults in exactly the same order, so a run produces
**byte-identical** ``PregelResult`` values, ``RunStats``, and BPPA
observations on either path — including under checkpointing and
fault plans.  The fast path engages automatically and disengages for
the rest of the run the first time a topology mutation is applied
(dense ids are frozen); ``confined_recovery`` runs use the reference
path throughout, because confined replay re-executes single
partitions against logged per-vertex inboxes.
"""

from __future__ import annotations

import operator
import random
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.bsp.checkpoint import (
    CheckpointStore,
    restore_checkpoint,
    restore_partition,
    take_checkpoint,
)
from repro.bsp.combiner import Combiner, SumCombiner
from repro.bsp.context import ComputeContext, MasterContext
from repro.bsp.faults import DeliveryFaults, FaultInjector, FaultPlan
from repro.bsp.program import VertexProgram
from repro.bsp.vertex import VertexState
from repro.bsp.worker import Worker
from repro.errors import (
    CheckpointError,
    MessageToUnknownVertexError,
    RecoveryExhaustedError,
    SuperstepLimitExceeded,
    WorkerCrashError,
)
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, build_dense_index
from repro.metrics.bppa import BppaObservation, BppaTracker
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats, SuperstepStats, SuperstepWall
from repro.trace.events import (
    Barrier,
    CheckpointWrite,
    FaultInjected,
    Handoff,
    Rollback,
    SuperstepEnd,
    SuperstepStart,
    WorkerProfile,
)
from repro.trace.recorder import TraceRecorder, get_default_trace


@dataclass
class PregelResult:
    """Everything a run produces: answers plus measurements."""

    values: Dict[Hashable, Any]
    stats: RunStats
    bppa: Optional[BppaObservation]
    aggregate_history: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        return self.stats.num_supersteps

    @property
    def time_processor_product(self) -> float:
        return self.stats.time_processor_product


class PregelEngine:
    """Runs one :class:`VertexProgram` over one graph.

    Parameters
    ----------
    graph:
        The input graph.  Undirected edges are materialized as two
        directed runtime edges, as Pregel does.
    program:
        The vertex program to execute.
    num_workers:
        The simulated processor count ``p``.
    partitioner:
        ``vertex_id -> worker_index`` (default: hash partitioning).
    combiner:
        Optional sender-side message combiner.
    cost_model:
        BSP parameters ``g``, ``L`` and the checkpoint-write
        bandwidth ``c_ckpt`` (default ``g = L = 1``).
    max_supersteps:
        Hard bound; exceeding it raises
        :class:`~repro.errors.SuperstepLimitExceeded`.
    track_bppa:
        Record per-vertex balance factors (costs one ``state_size``
        call per active vertex per superstep).
    seed:
        Seed for ``ctx.random`` so randomized programs are
        reproducible.
    checkpoint_interval:
        Snapshot engine state every this many supersteps (plus a
        baseline at superstep 0).  ``None`` disables periodic
        checkpoints; a fault plan with crashes still gets the
        baseline so recovery is possible.
    fault_plan:
        A :class:`~repro.bsp.faults.FaultPlan` to inject during the
        run.  Crashes trigger rollback-and-replay; message faults are
        masked by reliable delivery and only add cost.
    max_recovery_attempts:
        How many times one superstep may crash-and-recover before the
        run raises :class:`~repro.errors.RecoveryExhaustedError`.
    confined_recovery:
        Recompute only the crashed worker's partition from logged
        messages instead of rolling every worker back (cheaper; falls
        back to full rollback when topology mutated since the last
        checkpoint; assumes ``compute`` does not draw from
        ``ctx.random``).  Forces the reference execution path.
    use_fast_path:
        ``None`` (default): engage the dense-index fast path unless
        ``confined_recovery`` is set.  ``False``: force the reference
        dict path (the equivalence oracle).  ``True``: require the
        fast path; raises :class:`ValueError` when combined with
        ``confined_recovery``.  Either way the first applied topology
        mutation permanently falls back to the reference path.
    trace:
        A :class:`~repro.trace.recorder.TraceRecorder` to receive the
        run's structured events (superstep lifecycle, per-worker
        profiles, checkpoint writes, rollbacks, injected faults, path
        handoffs — see :mod:`repro.trace`).  ``None`` (default) falls
        back to the process-wide recorder set via
        :func:`~repro.trace.recorder.set_default_trace`, and tracing
        is off when neither is set — every emission site guards on a
        single ``None``-check, so an untraced run pays nothing else.
    """

    #: Which execution backend this engine class implements; the
    #: process-parallel subclass overrides it with ``"parallel"``.
    backend_name = "serial"

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        num_workers: int = 4,
        partitioner=None,
        combiner: Optional[Combiner] = None,
        cost_model: Optional[BSPCostModel] = None,
        max_supersteps: int = 100_000,
        track_bppa: bool = True,
        seed: int = 0,
        checkpoint_interval: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_recovery_attempts: int = 3,
        confined_recovery: bool = False,
        use_fast_path: Optional[bool] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        self._graph = graph
        self._program = program
        self._num_workers = num_workers
        self._combiner = combiner
        self._cost_model = cost_model or BSPCostModel()
        self._max_supersteps = max_supersteps
        self._trace = trace if trace is not None else get_default_trace()
        self.rng = random.Random(seed)

        partitioner = partitioner or HashPartitioner(num_workers)
        self._partitioner = partitioner
        self._workers = [Worker(i) for i in range(num_workers)]
        self._states: Dict[Hashable, VertexState] = {}
        self._owner: Dict[Hashable, int] = {}
        self._build_states()

        self._tracker: Optional[BppaTracker] = None
        if track_bppa:
            degrees = {
                v: graph.total_degree(v) for v in graph.vertices()
            }
            self._tracker = BppaTracker(degrees)

        # Superstep-scoped structures (reference dict path; the fast
        # path swaps the mailboxes for dense slot arrays below).
        self._ctx = ComputeContext(self)
        self._inbox: Dict[Hashable, List[Any]] = defaultdict(list)
        self._outbox: Dict[Hashable, List] = defaultdict(list)
        self._aggregators = dict(getattr(program, "aggregators", dict)())
        self._agg_current: Dict[str, Any] = {}
        self._agg_finalized: Dict[str, Any] = {}
        self._wake_all = False
        self._aggregate_history: List[Dict[str, Any]] = []

        # Fault tolerance: checkpointing, injection, recovery.
        if (
            checkpoint_interval is not None
            and checkpoint_interval < 1
        ):
            raise CheckpointError(
                "checkpoint_interval must be >= 1, got "
                f"{checkpoint_interval}"
            )
        if max_recovery_attempts < 1:
            raise ValueError(
                "max_recovery_attempts must be >= 1, got "
                f"{max_recovery_attempts}"
            )
        self._checkpoint_interval = checkpoint_interval
        self._fault_plan = fault_plan
        self._injector = (
            FaultInjector(fault_plan, num_workers)
            if fault_plan is not None
            else None
        )
        self._max_recovery_attempts = max_recovery_attempts
        self._confined_recovery = confined_recovery
        self._ckpt_store = CheckpointStore()
        self._ckpt_costs: Dict[int, float] = {}
        self._message_log: Dict[int, Dict[Hashable, List[Any]]] = {}
        self._wake_log: Dict[int, bool] = {}
        self._mutated_since_checkpoint = False
        self._replaying = False
        self._exec_counts: Dict[int, int] = {}
        self._crash_counts: Dict[int, int] = {}
        self._run_stats: Optional[RunStats] = None

        # Execution-path selection (dense fast path vs reference).
        if use_fast_path and confined_recovery:
            raise ValueError(
                "the dense fast path cannot run under confined "
                "recovery (confined replay needs the per-vertex "
                "message log of the reference path)"
            )
        if use_fast_path is None:
            use_fast_path = not confined_recovery
        self._fast_enabled = bool(use_fast_path)
        self._fast_active = False
        self._enqueue = self._enqueue_reference
        self._fanout = self._fanout_reference
        self._dense = None
        self._dense_states: Optional[List[VertexState]] = None
        self._dense_out: Optional[List[Optional[List[int]]]] = None
        self._remote_out: Optional[List[int]] = None
        self._in_slots: Optional[List[Optional[List[Any]]]] = None
        self._in_dirty: List[int] = []
        self._out_dirty: List[int] = []
        self._out_pending = 0
        self._accs: Optional[List[List[Any]]] = None
        self._cnts: Optional[List[List[int]]] = None
        self._acc: Optional[List[Any]] = None
        self._cnt: Optional[List[int]] = None
        self._acc_touched: List[int] = []
        self._slot_seen: Optional[List[int]] = None
        self._stamp = 0
        self._cur_worker: Optional[Worker] = None
        self._cur_src = 0
        self._cur_idx = 0
        if self._fast_enabled:
            self._engage_fast_path()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_states(self) -> None:
        g = self._graph
        for v in g.vertices():
            out_edges = {u: g.weight(v, u) for u in g.neighbors(v)}
            if g.directed:
                in_edges = {u: g.weight(u, v) for u in g.in_neighbors(v)}
            else:
                in_edges = out_edges
            state = VertexState(
                v,
                value=self._program.initial_value(v, g),
                out_edges=out_edges,
                in_edges=in_edges,
            )
            self._states[v] = state
            widx = self._partitioner(v) % self._num_workers
            self._owner[v] = widx
            self._workers[widx].vertex_ids.append(v)

    # ------------------------------------------------------------------
    # Engine services used by ComputeContext
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._states)

    @property
    def fast_path(self) -> bool:
        """True while the dense-index fast path is engaged."""
        return self._fast_active

    def has_vertex(self, vertex_id: Hashable) -> bool:
        return vertex_id in self._states

    def _enqueue_reference(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        if target not in self._states:
            raise MessageToUnknownVertexError(target)
        if self._replaying:
            # Confined replay recomputes state only; every message the
            # original execution sent was already delivered (and
            # logged), so re-sends are suppressed.
            return
        src_worker = self._owner[source]
        dst_worker = self._owner[target]
        self._outbox[target].append((src_worker, message))
        self._workers[src_worker].sent_logical += 1
        if src_worker != dst_worker:
            self._workers[src_worker].sent_remote += 1

    def _fanout_reference(
        self, source: Hashable, targets, message: Any
    ) -> int:
        enqueue = self._enqueue
        n = 0
        for target in targets:
            enqueue(source, target, message)
            n += 1
        return n

    # -- fast path: slot mailboxes, send-time combining ----------------
    #
    # These run only from inside the fast compute pass, which binds
    # self._cur_worker / self._cur_src / self._cur_idx per vertex and
    # self._acc / self._cnt per worker; confined recovery (the only
    # producer of _replaying) forces the reference path, so no replay
    # guard is needed here.
    #
    # Key properties that keep the fast path byte-identical:
    #
    # * Workers execute sequentially, so global send order is "all of
    #   worker 0's sends, then worker 1's, …".  Each worker owns a
    #   persistent accumulator array indexed by dense destination
    #   (its ``(src_worker, destination)`` slots), and delivery scans
    #   the workers in index order per destination — which is exactly
    #   the per-destination grouping order the reference outbox
    #   produces at delivery time.
    # * ``_out_dirty`` is rebuilt per superstep by stamping first
    #   touches per worker and deduplicating across workers in worker
    #   order; that equals the reference outbox's key insertion order,
    #   which fixes the fault-injection draw sequence and the inbox
    #   (and checkpoint) insertion order.
    # * The dense adjacency (_dense_out/_remote_out, compiled once at
    #   engage) replaces the per-message id hash for full-neighbor
    #   fanouts; the topology is frozen while the fast path is active,
    #   so the compiled neighbor indices cannot go stale.
    #
    # With a combiner, a slot is a single combined message in
    # ``_accs[w][dst]`` plus its logical count in ``_cnts[w][dst]``
    # (occupancy is ``cnt > 0``, so messages may be any value,
    # including None); without one it is a list of messages in send
    # order (occupancy: non-None).

    def _enqueue_fast(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        dst = self._dense.idx_of.get(target)
        if dst is None:
            raise MessageToUnknownVertexError(target)
        bucket = self._acc[dst]
        if bucket is None:
            self._acc[dst] = [message]
            self._acc_touched.append(dst)
        else:
            bucket.append(message)
        self._out_pending += 1
        worker = self._cur_worker
        worker.sent_logical += 1
        if self._dense.owner_of[dst] != self._cur_src:
            worker.sent_remote += 1

    def _enqueue_fast_combining(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        dst = self._dense.idx_of.get(target)
        if dst is None:
            raise MessageToUnknownVertexError(target)
        cnt = self._cnt
        c = cnt[dst]
        if c:
            self._acc[dst] = self._combine(self._acc[dst], message)
            cnt[dst] = c + 1
        else:
            self._acc[dst] = message
            cnt[dst] = 1
            self._acc_touched.append(dst)
        self._out_pending += 1
        worker = self._cur_worker
        worker.sent_logical += 1
        if self._dense.owner_of[dst] != self._cur_src:
            worker.sent_remote += 1

    def _fanout_fast(self, source, targets, message) -> int:
        idx = self._cur_idx
        acc = self._acc
        touched = self._acc_touched
        worker = self._cur_worker
        nbrs = self._dense_out[idx]
        if (
            nbrs is not None
            and targets is self._dense_states[idx].out_edges
        ):
            # Full-neighbor fanout: use the precompiled dense
            # adjacency — no per-target hashing.
            for dst in nbrs:
                bucket = acc[dst]
                if bucket is None:
                    acc[dst] = [message]
                    touched.append(dst)
                else:
                    bucket.append(message)
            n = len(nbrs)
            worker.sent_logical += n
            worker.sent_remote += self._remote_out[idx]
            self._out_pending += n
            return n
        idx_get = self._dense.idx_of.get
        owner_of = self._dense.owner_of
        src = self._cur_src
        n = remote = 0
        try:
            for target in targets:
                dst = idx_get(target)
                if dst is None:
                    raise MessageToUnknownVertexError(target)
                bucket = acc[dst]
                if bucket is None:
                    acc[dst] = [message]
                    touched.append(dst)
                else:
                    bucket.append(message)
                if owner_of[dst] != src:
                    remote += 1
                n += 1
        finally:
            # Commit partial counts on an unknown-target raise, exactly
            # as per-message sends would have.
            worker.sent_logical += n
            worker.sent_remote += remote
            self._out_pending += n
        return n

    def _fanout_fast_combining(self, source, targets, message) -> int:
        idx = self._cur_idx
        acc = self._acc
        cnt = self._cnt
        touched = self._acc_touched
        combine = self._combine
        worker = self._cur_worker
        nbrs = self._dense_out[idx]
        if (
            nbrs is not None
            and targets is self._dense_states[idx].out_edges
        ):
            for dst in nbrs:
                c = cnt[dst]
                if c:
                    acc[dst] = combine(acc[dst], message)
                    cnt[dst] = c + 1
                else:
                    acc[dst] = message
                    cnt[dst] = 1
                    touched.append(dst)
            n = len(nbrs)
            worker.sent_logical += n
            worker.sent_remote += self._remote_out[idx]
            self._out_pending += n
            return n
        idx_get = self._dense.idx_of.get
        owner_of = self._dense.owner_of
        src = self._cur_src
        n = remote = 0
        try:
            for target in targets:
                dst = idx_get(target)
                if dst is None:
                    raise MessageToUnknownVertexError(target)
                c = cnt[dst]
                if c:
                    acc[dst] = combine(acc[dst], message)
                    cnt[dst] = c + 1
                else:
                    acc[dst] = message
                    cnt[dst] = 1
                    touched.append(dst)
                if owner_of[dst] != src:
                    remote += 1
                n += 1
        finally:
            worker.sent_logical += n
            worker.sent_remote += remote
            self._out_pending += n
        return n

    def _flush_worker_sends(self) -> None:
        """Record the finished worker's first-touched destinations in
        the global dirty list.

        Runs once per worker per superstep, O(touched destinations),
        and moves no payloads — slots stay in the per-worker
        accumulators until delivery.  Workers flush in index order,
        which is also global send order, so ``_out_dirty`` gets the
        reference outbox's first-touch key order.
        """
        seen = self._slot_seen
        stamp = self._stamp
        dirty = self._out_dirty
        for dst in self._acc_touched:
            if seen[dst] != stamp:
                seen[dst] = stamp
                dirty.append(dst)
        self._acc_touched = []

    def _aggregate(self, name: str, value: Any) -> None:
        if self._replaying:
            return
        # _agg_current is pre-seeded with every registered
        # aggregator's initial() at superstep start, so an unknown
        # name raises KeyError exactly as the registry lookup would.
        current = self._agg_current
        current[name] = self._aggregators[name].reduce(
            current[name], value
        )

    # ------------------------------------------------------------------
    # Execution-path management
    # ------------------------------------------------------------------

    def _engage_fast_path(self) -> None:
        """Compile the dense index and switch to slot mailboxes.

        Called at construction and when a checkpoint restore rewinds
        the engine to a state where the fast path was active.  The
        dense order mirrors worker/`vertex_ids` order exactly, so
        execution sequencing is unchanged.
        """
        dense = build_dense_index(self._workers)
        self._dense = dense
        for worker, (start, stop) in zip(self._workers, dense.ranges):
            worker.range_start = start
            worker.range_stop = stop
        states = self._states
        dense_states = [states[vid] for vid in dense.id_of]
        self._dense_states = dense_states
        n = len(dense.id_of)
        # Compile the dense adjacency: full-neighbor fanouts iterate
        # precomputed int indices instead of hashing ids per message.
        # A vertex with a dangling out-edge (no matching state) gets
        # None and falls back to the generic per-target loop, which
        # raises MessageToUnknownVertexError exactly as the reference
        # path would.
        idx_of = dense.idx_of
        owner_of = dense.owner_of
        dense_out: List[Optional[List[int]]] = [None] * n
        remote_out = [0] * n
        for idx, state in enumerate(dense_states):
            src = owner_of[idx]
            nbrs: List[int] = []
            remote = 0
            for target in state.out_edges:
                j = idx_of.get(target)
                if j is None:
                    nbrs = None
                    break
                nbrs.append(j)
                if owner_of[j] != src:
                    remote += 1
            if nbrs is not None:
                dense_out[idx] = nbrs
                remote_out[idx] = remote
        self._dense_out = dense_out
        self._remote_out = remote_out
        self._in_slots = [None] * n
        self._in_dirty = []
        self._out_dirty = []
        self._out_pending = 0
        self._accs = [[None] * n for _ in self._workers]
        self._cnts = (
            [[0] * n for _ in self._workers]
            if self._combiner is not None
            else None
        )
        self._acc = None
        self._cnt = None
        self._acc_touched = []
        self._slot_seen = [0] * n
        self._stamp = 0
        self._inbox = defaultdict(list)  # idle while fast
        self._outbox = defaultdict(list)
        if self._combiner is not None:
            # Stock SumCombiner folds with the C-level add (exactly
            # ``a + b``, the same expression its combine() evaluates),
            # skipping a Python frame per fold.  Gated on the exact
            # type so subclasses keep their overridden behavior.
            if type(self._combiner) is SumCombiner:
                self._combine = operator.add
            else:
                self._combine = self._combiner.combine
            self._enqueue = self._enqueue_fast_combining
            self._fanout = self._fanout_fast_combining
        else:
            self._enqueue = self._enqueue_fast
            self._fanout = self._fanout_fast
        self._fast_active = True

    def _disengage_fast_path(self) -> None:
        """Fall back to the reference dict path for the rest of the
        run (the frozen dense index no longer matches the topology).

        Undelivered slot-mailbox messages move to the dict inbox in
        delivery order, so the reference path resumes byte-identically
        next superstep.
        """
        inbox: Dict[Hashable, List[Any]] = defaultdict(list)
        id_of = self._dense.id_of
        in_slots = self._in_slots
        for idx in self._in_dirty:
            inbox[id_of[idx]] = in_slots[idx]
        self._inbox = inbox
        self._outbox = defaultdict(list)
        self._dense = None
        self._dense_states = None
        self._dense_out = None
        self._remote_out = None
        self._in_slots = None
        self._in_dirty = []
        self._out_dirty = []
        self._out_pending = 0
        self._accs = None
        self._cnts = None
        self._acc = None
        self._cnt = None
        self._acc_touched = []
        self._slot_seen = None
        self._enqueue = self._enqueue_reference
        self._fanout = self._fanout_reference
        self._fast_active = False

    def _reset_execution_path(self, fast: bool) -> None:
        """Adopt the execution path recorded in a checkpoint.

        Invoked by :func:`~repro.bsp.checkpoint.restore_checkpoint`
        after vertex states, ownership, and worker lists are restored;
        rebuilds the path-specific mailboxes empty.
        """
        if fast and self._fast_enabled:
            self._engage_fast_path()
        else:
            self._fast_active = False
            self._dense = None
            self._dense_states = None
            self._dense_out = None
            self._remote_out = None
            self._in_slots = None
            self._in_dirty = []
            self._out_dirty = []
            self._out_pending = 0
            self._accs = None
            self._cnts = None
            self._acc = None
            self._cnt = None
            self._acc_touched = []
            self._slot_seen = None
            self._enqueue = self._enqueue_reference
            self._fanout = self._fanout_reference
            self._inbox = defaultdict(list)
            self._outbox = defaultdict(list)

    def _post_restore_sync(self) -> None:
        """Hook invoked by :func:`~repro.bsp.checkpoint.
        restore_checkpoint` after a full rollback has rebuilt the
        engine state.  The serial engine needs nothing; the process-
        parallel backend overrides this to push the restored
        partitions back out to its worker processes (respawning any
        that were killed by an injected crash)."""

    def _inbox_snapshot_items(self):
        """``(vertex_id, messages)`` pairs of the undelivered inbox in
        delivery order, independent of mailbox layout.  Used by
        :func:`~repro.bsp.checkpoint.take_checkpoint`."""
        if self._fast_active:
            id_of = self._dense.id_of
            in_slots = self._in_slots
            return [
                (id_of[idx], in_slots[idx]) for idx in self._in_dirty
            ]
        return list(self._inbox.items())

    def _restore_inbox(self, inbox: Dict[Hashable, List[Any]]) -> None:
        """Adopt ``inbox`` (delivery-ordered) into the active mailbox
        layout.  Used by checkpoint restore."""
        if self._fast_active:
            idx_of = self._dense.idx_of
            in_slots = self._in_slots
            dirty = self._in_dirty
            for vid, msgs in inbox.items():
                idx = idx_of[vid]
                in_slots[idx] = list(msgs)
                dirty.append(idx)
        else:
            fresh: Dict[Hashable, List[Any]] = defaultdict(list)
            for vid, msgs in inbox.items():
                fresh[vid] = list(msgs)
            self._inbox = fresh

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> PregelResult:
        """Execute the program to termination and return the result.

        Under fault injection the loop is a supervision loop: a
        checkpoint may be written before a superstep executes, an
        injected :class:`WorkerCrashError` rolls the run back to the
        last checkpoint (or triggers confined recovery) and execution
        resumes, with all recovery costs accounted in ``RunStats``.
        """
        stats = RunStats(
            num_workers=self._num_workers, cost_model=self._cost_model
        )
        self._run_stats = stats
        self._aggregate_history = []
        injector = self._injector
        tracker = self._tracker

        superstep = 0
        while True:
            if superstep >= self._max_supersteps:
                raise SuperstepLimitExceeded(
                    self._max_supersteps, self._program.name
                )
            if self._should_checkpoint(superstep):
                self._write_checkpoint(superstep, stats)
            try:
                if injector is not None:
                    injector.begin_superstep(superstep)
                done = self._execute_superstep(superstep, stats)
            except WorkerCrashError as crash:
                superstep = self._recover(crash, superstep, stats)
                continue
            superstep += 1
            if done:
                break

        if tracker is not None:
            tracker.observation.num_supersteps = stats.num_supersteps
        return PregelResult(
            values={v: s.value for v, s in self._states.items()},
            stats=stats,
            bppa=tracker.observation if tracker else None,
            aggregate_history=self._aggregate_history,
        )

    def _execute_superstep(
        self, superstep: int, stats: RunStats
    ) -> bool:
        """Run one superstep end to end; return True when the run is
        finished (master halt, or quiescence)."""
        program = self._program
        ctx = self._ctx
        tracker = self._tracker
        self._exec_counts[superstep] = (
            self._exec_counts.get(superstep, 0) + 1
        )
        trace = self._trace
        if trace is not None:
            trace.emit(
                SuperstepStart(
                    superstep=superstep,
                    execution=self._exec_counts[superstep],
                    path=(
                        "fast" if self._fast_active else "reference"
                    ),
                    backend=self.backend_name,
                )
            )

        for w in self._workers:
            w.reset_counters()
        fast = self._fast_active
        if not fast:
            self._outbox = defaultdict(list)
        self._agg_current = {
            name: agg.initial()
            for name, agg in self._aggregators.items()
        }
        ctx._begin_superstep(superstep, self._agg_finalized)

        wake_all = self._wake_all or superstep == 0
        self._wake_all = False
        if self._confined_recovery:
            self._wake_log[superstep] = wake_all
        if fast:
            active_count = self._compute_pass_fast(wake_all)
            pending = self._out_pending
        else:
            active_count = self._compute_pass_reference(wake_all)
            pending = sum(len(v) for v in self._outbox.values())
        if tracker is not None:
            tracker.record_superstep()

        # Aggregators reduced this superstep become visible next.
        self._agg_finalized = dict(self._agg_current)
        self._aggregate_history.append(self._agg_finalized)

        master = MasterContext(
            superstep=superstep,
            aggregates=self._agg_finalized,
            num_active=active_count,
            num_vertices=len(self._states),
            pending_messages=pending,
        )
        program.master_compute(master)

        removed = self._apply_mutations()
        mutated = removed is not None
        if fast:
            delivered = self._deliver_fast(superstep, mutated)
            if mutated:
                # The frozen dense index no longer matches the
                # topology: hand the undelivered inbox to the
                # reference path and stay there.
                if trace is not None:
                    trace.emit(
                        Handoff(
                            superstep=superstep,
                            from_path="fast",
                            to_path="reference",
                            reason="topology mutation froze the "
                            "dense index",
                        )
                    )
                self._disengage_fast_path()
        else:
            delivered = self._deliver(superstep)
        if removed:
            # The senders' charges for messages to removed vertices
            # were reversed during delivery; the ownership entries can
            # now be reclaimed (re-added ids were already discarded
            # from ``removed`` by _apply_mutations).
            for vid in removed:
                self._owner.pop(vid, None)
        entry = self._superstep_stats(superstep, active_count)
        stats.supersteps.append(entry)
        stats.record_wall(
            SuperstepWall(
                superstep=superstep,
                compute_seconds=[
                    w.wall_seconds for w in self._workers
                ],
                barrier_seconds=[
                    w.barrier_seconds for w in self._workers
                ],
            )
        )
        if trace is not None:
            # The barrier block: per-worker profiles in rank order
            # (on the parallel backend the coordinator filled the
            # Worker objects from the rank payloads in rank order, so
            # the merged stream is deterministic), the h-relation, and
            # the committed superstep's cost attribution.
            for w in self._workers:
                trace.emit(
                    WorkerProfile(
                        superstep=superstep,
                        worker=w.index,
                        work=w.work,
                        sent_logical=w.sent_logical,
                        received_logical=w.received_logical,
                        sent_network=w.sent_network,
                        received_network=w.received_network,
                        sent_remote=w.sent_remote,
                        wall_seconds=w.wall_seconds,
                        barrier_seconds=w.barrier_seconds,
                    )
                )
            trace.emit(
                Barrier(
                    superstep=superstep,
                    h=entry.h,
                    delivered=delivered,
                )
            )
            trace.emit(
                SuperstepEnd(
                    superstep=superstep,
                    active_vertices=active_count,
                    w=entry.w,
                    h=entry.h,
                    cost=entry.cost(self._cost_model),
                    binding=entry.binding_term(self._cost_model),
                    checkpoint_cost=entry.checkpoint_cost,
                    execution=entry.executions,
                )
            )

        if master._halt:
            return True
        if master._activate_all:
            self._wake_all = True
        if delivered == 0 and not self._wake_all:
            if all(s.halted for s in self._states.values()):
                return True
        return False

    def _compute_pass_reference(self, wake_all: bool) -> int:
        """One superstep's compute calls on the dict path; returns the
        active-vertex count."""
        program = self._program
        ctx = self._ctx
        tracker = self._tracker
        inbox = self._inbox
        states = self._states
        active_count = 0
        for worker in self._workers:
            seg_start = time.perf_counter()
            for vid in worker.vertex_ids:
                state = states.get(vid)
                if state is None:
                    continue
                messages = inbox.pop(vid, None)
                if messages:
                    state.halted = False
                elif state.halted and not wake_all:
                    continue
                elif wake_all:
                    state.halted = False
                messages = messages or []
                active_count += 1
                ctx._begin_vertex(state)
                program.compute(state, messages, ctx)
                ops = 1 + len(messages) + ctx._sent + ctx._charged
                worker.work += ops
                if tracker is not None:
                    tracker.record_vertex(
                        vid,
                        ctx._sent,
                        len(messages),
                        ops,
                        program.state_size(state),
                    )
            worker.wall_seconds = time.perf_counter() - seg_start
        return active_count

    def _compute_pass_fast(self, wake_all: bool) -> int:
        """One superstep's compute calls on the dense path.

        Identical visit order, wake/halt transitions, work accounting,
        and tracker feed as :meth:`_compute_pass_reference`; vertex
        state and mailboxes are reached by dense index instead of by
        hashing, and consumed inbox slots are cleared O(active) via
        the dirty list.
        """
        program = self._program
        ctx = self._ctx
        tracker = self._tracker
        compute = program.compute
        state_size = program.state_size
        begin_vertex = ctx._begin_vertex
        dense_states = self._dense_states
        in_slots = self._in_slots
        accs = self._accs
        cnts = self._cnts
        self._stamp += 1
        active_count = 0
        for worker in self._workers:
            seg_start = time.perf_counter()
            self._cur_worker = worker
            self._cur_src = worker.index
            self._acc = accs[worker.index]
            if cnts is not None:
                self._cnt = cnts[worker.index]
            work = worker.work
            for idx in range(worker.range_start, worker.range_stop):
                state = dense_states[idx]
                messages = in_slots[idx]
                if messages:
                    state.halted = False
                elif state.halted and not wake_all:
                    continue
                else:
                    if wake_all:
                        state.halted = False
                    messages = []
                active_count += 1
                self._cur_idx = idx
                begin_vertex(state)
                compute(state, messages, ctx)
                ops = 1 + len(messages) + ctx._sent + ctx._charged
                work += ops
                if tracker is not None:
                    tracker.record_vertex(
                        state.id,
                        ctx._sent,
                        len(messages),
                        ops,
                        state_size(state),
                    )
            worker.work = work
            if self._acc_touched:
                self._flush_worker_sends()
            worker.wall_seconds = time.perf_counter() - seg_start
        for idx in self._in_dirty:
            in_slots[idx] = None
        self._in_dirty = []
        return active_count

    # ------------------------------------------------------------------
    # Checkpointing and recovery
    # ------------------------------------------------------------------

    @property
    def _checkpointing_enabled(self) -> bool:
        # Periodic checkpoints when an interval is set; a crash-bearing
        # fault plan forces at least the superstep-0 baseline so the
        # run can always recover.  Message-only fault plans need no
        # checkpoints (reliable delivery masks them).
        return self._checkpoint_interval is not None or (
            self._fault_plan is not None
            and self._fault_plan.has_crashes
        )

    def _should_checkpoint(self, superstep: int) -> bool:
        if not self._checkpointing_enabled:
            return False
        latest = self._ckpt_store.latest
        if latest is None:
            return True  # the superstep-0 baseline
        if self._checkpoint_interval is None:
            return False
        return (
            superstep - latest.superstep >= self._checkpoint_interval
        )

    def _write_checkpoint(
        self, superstep: int, stats: RunStats
    ) -> None:
        ckpt = self._ckpt_store.save(take_checkpoint(self, superstep))
        cost = self._cost_model.checkpoint_cost(ckpt.size)
        stats.checkpoints_written += 1
        stats.checkpoint_cost += cost
        self._ckpt_costs[superstep] = cost
        self._mutated_since_checkpoint = False
        if self._trace is not None:
            self._trace.emit(
                CheckpointWrite(
                    superstep=superstep, size=ckpt.size, cost=cost
                )
            )
        if self._confined_recovery:
            # Logged messages before the checkpoint can never be
            # replayed again; reclaim them.
            self._message_log = {
                t: log
                for t, log in self._message_log.items()
                if t >= superstep
            }
            self._wake_log = {
                t: wake
                for t, wake in self._wake_log.items()
                if t >= superstep
            }

    def _recover(
        self, crash: WorkerCrashError, superstep: int, stats: RunStats
    ) -> int:
        """Handle an injected crash; return the superstep to resume at.

        Raises :class:`RecoveryExhaustedError` when the same superstep
        has crashed more than ``max_recovery_attempts`` times or no
        checkpoint exists to restore from.
        """
        attempts = self._crash_counts.get(superstep, 0) + 1
        self._crash_counts[superstep] = attempts
        if self._trace is not None:
            self._trace.emit(
                FaultInjected(
                    superstep=superstep,
                    fault="crash",
                    worker=crash.worker % self._num_workers,
                    attempt=attempts,
                )
            )
        if attempts > self._max_recovery_attempts:
            raise RecoveryExhaustedError(superstep, attempts) from crash
        ckpt = self._ckpt_store.latest
        if ckpt is None:
            raise RecoveryExhaustedError(superstep, attempts) from crash

        stats.recovery_attempts += 1
        # Exponential backoff before the restart: the k-th retry of a
        # superstep waits 2^(k-1) sync periods.
        stats.backoff_cost += self._cost_model.L * (
            2 ** (attempts - 1)
        )

        if self._confined_recovery and not self._mutated_since_checkpoint:
            self._confined_replay(crash, superstep, stats, ckpt)
            return superstep

        # Full rollback: discard the supersteps after the checkpoint
        # (their charge becomes replay cost — they will be re-executed
        # identically) and restore the snapshot.
        discarded = stats.supersteps[ckpt.superstep:]
        for entry in discarded:
            stats.replay_cost += entry.cost(self._cost_model)
        stats.supersteps_replayed += len(discarded)
        del stats.supersteps[ckpt.superstep:]
        restore_checkpoint(
            self, ckpt, discarded_supersteps=len(discarded)
        )
        return ckpt.superstep

    def _confined_replay(
        self,
        crash: WorkerCrashError,
        superstep: int,
        stats: RunStats,
        ckpt,
    ) -> None:
        """Rebuild only the crashed worker's partition.

        The healthy workers keep their live state; the crashed
        partition is restored from the checkpoint and its vertices'
        ``compute`` calls are replayed against the logged per-superstep
        inboxes, with outgoing messages and aggregator contributions
        suppressed (their effects are already in the live state of the
        other workers).  Replay work is charged as recovery cost but
        does not touch the committed superstep stats.
        """
        worker_idx = crash.worker % self._num_workers
        restored = restore_partition(self, ckpt, worker_idx)
        if self._trace is not None:
            self._trace.emit(
                Rollback(
                    superstep=superstep,
                    restored_vertices=restored,
                    confined=True,
                )
            )
        worker = self._workers[worker_idx]
        program = self._program
        ctx = ComputeContext(self)
        replay_work = 0.0
        self._replaying = True
        try:
            for t in range(ckpt.superstep, superstep):
                prev_aggs = (
                    self._aggregate_history[t - 1] if t >= 1 else {}
                )
                ctx._begin_superstep(t, prev_aggs)
                wake_all = self._wake_log.get(t, t == 0)
                log_t = self._message_log.get(t, {})
                for vid in worker.vertex_ids:
                    state = self._states.get(vid)
                    if state is None:
                        continue
                    messages = log_t.get(vid)
                    if messages:
                        state.halted = False
                    elif state.halted and not wake_all:
                        continue
                    elif wake_all:
                        state.halted = False
                    messages = list(messages) if messages else []
                    ctx._begin_vertex(state)
                    program.compute(state, messages, ctx)
                    replay_work += (
                        1 + len(messages) + ctx._sent + ctx._charged
                    )
        finally:
            self._replaying = False
        # The crashed worker lost its incoming queue for the current
        # superstep; restore it from the delivery log.
        log_now = self._message_log.get(superstep, {})
        for vid in worker.vertex_ids:
            if vid in log_now:
                self._inbox[vid] = list(log_now[vid])
            else:
                self._inbox.pop(vid, None)
        stats.replay_cost += replay_work
        stats.supersteps_replayed += superstep - ckpt.superstep

    # ------------------------------------------------------------------
    # Superstep boundary
    # ------------------------------------------------------------------

    def _superstep_stats(
        self, superstep: int, active: int
    ) -> SuperstepStats:
        ws = self._workers
        return SuperstepStats(
            superstep=superstep,
            work=[w.work for w in ws],
            sent_logical=[w.sent_logical for w in ws],
            received_logical=[w.received_logical for w in ws],
            sent_network=[w.sent_network for w in ws],
            received_network=[w.received_network for w in ws],
            active_vertices=active,
            sent_remote=[w.sent_remote for w in ws],
            checkpoint_cost=self._ckpt_costs.get(superstep, 0.0),
            executions=self._exec_counts.get(superstep, 1),
        )

    def _apply_mutations(self) -> Optional[Set[Hashable]]:
        """Apply the superstep's requested topology mutations.

        Returns ``None`` when no mutation was requested, else the set
        of removed vertex ids (possibly empty) whose ownership entries
        the caller reclaims after delivery — delivery still needs
        ``_owner`` to reverse the senders' charges for messages whose
        destination was removed.
        """
        log = self._ctx._mutations
        if log.is_empty():
            return None
        self._mutated_since_checkpoint = True
        directed = self._graph.directed
        for u, v in log.remove_edges:
            src = self._states.get(u)
            if src is not None:
                src.out_edges.pop(v, None)
            if directed:
                dst = self._states.get(v)
                if dst is not None:
                    dst.in_edges.pop(u, None)
        removed: Set[Hashable] = set()
        for vid in log.remove_vertices:
            state = self._states.pop(vid, None)
            if state is None:
                continue
            removed.add(vid)
            for src in list(state.in_edges):
                other = self._states.get(src)
                if other is not None:
                    other.out_edges.pop(vid, None)
            if directed:
                for dst in list(state.out_edges):
                    other = self._states.get(dst)
                    if other is not None:
                        other.in_edges.pop(vid, None)
            # Pending outbox messages for vid stay put: _deliver sees
            # the missing destination, drops them and reverses the
            # senders' charges so the logical books balance.
            self._inbox.pop(vid, None)
        if removed:
            # Compact the owners' id lists so later supersteps do not
            # pay a dead-vertex skip per removed vertex forever.
            for worker in {
                self._workers[self._owner[vid]] for vid in removed
            }:
                worker.vertex_ids = [
                    v for v in worker.vertex_ids if v not in removed
                ]
        for vid, value in log.add_vertices:
            if vid in self._states:
                continue
            state = VertexState(vid, value=value, out_edges={})
            if directed:
                state.in_edges = {}
            self._states[vid] = state
            widx = self._partitioner(vid) % self._num_workers
            self._owner[vid] = widx
            self._workers[widx].vertex_ids.append(vid)
            # A removed-then-re-added id keeps its (new) ownership.
            removed.discard(vid)
        for u, v, weight in log.add_edges:
            src = self._states.get(u)
            if src is None:
                continue
            src.out_edges[v] = weight
            if directed:
                dst = self._states.get(v)
                if dst is not None:
                    dst.in_edges[u] = weight
        log.clear()
        return removed

    def _deliver(self, superstep: int) -> int:
        """Move the outbox into next superstep's inbox.

        Applies the combiner per (destination, sending worker),
        accounts network traffic, charges ``received_logical`` at
        delivery time (so send/receive totals balance even when a
        mutation removed the destination — the sender's charges are
        reversed for such dropped messages), and runs the injected
        network faults through the reliable-delivery layer.  Returns
        the number of logical messages delivered.
        """
        delivered = 0
        combiner = self._combiner
        inbox = self._inbox
        injector = self._injector
        log_deliveries = self._confined_recovery
        log_entry: Dict[Hashable, List[Any]] = {}
        faults = DeliveryFaults() if injector is not None else None
        for target, entries in self._outbox.items():
            if target not in self._states:
                # Destination removed by a mutation this superstep:
                # the messages are dropped, so reverse the senders'
                # charges to keep the logical books balanced.
                dst_idx = self._owner.get(target)
                for src_worker, _ in entries:
                    w = self._workers[src_worker]
                    w.sent_logical -= 1
                    if dst_idx is None or src_worker != dst_idx:
                        w.sent_remote -= 1
                continue
            dst_worker = self._workers[self._owner[target]]
            dst_worker.received_logical += len(entries)
            if combiner is None:
                msgs = [m for _, m in entries]
                for src_worker, _ in entries:
                    self._workers[src_worker].sent_network += 1
                dst_worker.received_network += len(entries)
            else:
                groups: Dict[int, Any] = {}
                for src_worker, m in entries:
                    if src_worker in groups:
                        groups[src_worker] = combiner.combine(
                            groups[src_worker], m
                        )
                    else:
                        groups[src_worker] = m
                msgs = list(groups.values())
                for src_worker in groups:
                    self._workers[src_worker].sent_network += 1
                dst_worker.received_network += len(groups)
            if injector is not None:
                faults.absorb(injector.network_faults(len(msgs)))
            inbox[target].extend(msgs)
            if log_deliveries:
                log_entry[target] = list(inbox[target])
            delivered += len(msgs)
        if log_deliveries:
            self._message_log[superstep + 1] = log_entry
        if injector is not None:
            injector.commit(faults, self._run_stats)
            if self._trace is not None and faults.any:
                self._trace.emit(
                    FaultInjected(
                        superstep=superstep,
                        fault="network",
                        retransmitted=faults.retransmitted,
                        duplicated=faults.duplicated,
                        delayed=faults.delayed,
                    )
                )
        self._outbox = defaultdict(list)
        return delivered

    def _deliver_fast(self, superstep: int, mutated: bool) -> int:
        """Slot-mailbox delivery: identical accounting and fault-draw
        order to :meth:`_deliver`, over dense indices.

        Network counts are the occupied ``(destination, src_worker)``
        slots — the combiner already folded at send time — and
        ``received_logical`` comes from the per-slot logical tallies,
        so the logical/network split matches the reference path
        exactly.  ``mutated`` enables the removed-destination check
        (and charge reversal) that the reference path performs; when
        no mutation was applied this superstep the check is skipped,
        because every dense id is live by construction.
        """
        delivered = 0
        injector = self._injector
        workers = self._workers
        dense = self._dense
        owner_of = dense.owner_of
        id_of = dense.id_of
        in_slots = self._in_slots
        in_dirty = self._in_dirty
        states = self._states
        combining = self._combiner is not None
        faults = DeliveryFaults() if injector is not None else None
        if combining:
            lanes = list(zip(workers, self._accs, self._cnts))
        else:
            lanes = list(zip(workers, self._accs))
        for dst in self._out_dirty:
            if mutated and id_of[dst] not in states:
                # Dropped: destination removed this superstep —
                # reverse the senders' charges, as the reference
                # delivery does.
                target_owner = self._owner.get(id_of[dst])
                if combining:
                    for lane in lanes:
                        count = lane[2][dst]
                        if count:
                            lane[2][dst] = 0
                            lane[1][dst] = None
                            w = lane[0]
                            w.sent_logical -= count
                            if (
                                target_owner is None
                                or w.index != target_owner
                            ):
                                w.sent_remote -= count
                else:
                    for lane in lanes:
                        bucket = lane[1][dst]
                        if bucket is not None:
                            lane[1][dst] = None
                            w = lane[0]
                            w.sent_logical -= len(bucket)
                            if (
                                target_owner is None
                                or w.index != target_owner
                            ):
                                w.sent_remote -= len(bucket)
                continue
            dst_worker = workers[owner_of[dst]]
            if combining:
                received = 0
                msgs = []
                for src_worker, acc_w, cnt_w in lanes:
                    count = cnt_w[dst]
                    if count:
                        cnt_w[dst] = 0
                        msgs.append(acc_w[dst])
                        acc_w[dst] = None
                        received += count
                        src_worker.sent_network += 1
                dst_worker.received_logical += received
                dst_worker.received_network += len(msgs)
            else:
                msgs = None
                for src_worker, acc_w in lanes:
                    bucket = acc_w[dst]
                    if bucket is not None:
                        acc_w[dst] = None
                        src_worker.sent_network += len(bucket)
                        if msgs is None:
                            msgs = bucket
                        else:
                            msgs.extend(bucket)
                received = len(msgs)
                dst_worker.received_logical += received
                dst_worker.received_network += received
            if injector is not None:
                faults.absorb(injector.network_faults(len(msgs)))
            existing = in_slots[dst]
            if existing is None:
                in_slots[dst] = msgs
                in_dirty.append(dst)
            else:  # pragma: no cover - inbox is drained every pass
                existing.extend(msgs)
            delivered += len(msgs)
        self._out_dirty = []
        self._out_pending = 0
        if injector is not None:
            injector.commit(faults, self._run_stats)
            if self._trace is not None and faults.any:
                self._trace.emit(
                    FaultInjected(
                        superstep=superstep,
                        fault="network",
                        retransmitted=faults.retransmitted,
                        duplicated=faults.duplicated,
                        delayed=faults.delayed,
                    )
                )
        return delivered


# ---------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------

#: Names accepted by :func:`create_engine` / ``run_program(backend=)``.
BACKENDS = ("serial", "parallel")

_default_backend = "serial"


def set_default_backend(backend: str) -> None:
    """Set the engine backend used when none is passed explicitly.

    ``"serial"`` (the default and the correctness oracle) executes the
    logical workers one after another in-process; ``"parallel"``
    executes them as real OS processes (:mod:`repro.bsp.parallel`)
    with byte-identical results.  Threaded through the CLI as
    ``repro-table1 --backend``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {list(BACKENDS)}"
        )
    global _default_backend
    _default_backend = backend


def get_default_backend() -> str:
    """The backend :func:`create_engine` uses when none is given."""
    return _default_backend


def create_engine(
    graph: Graph,
    program: VertexProgram,
    backend: Optional[str] = None,
    **engine_kwargs,
) -> "PregelEngine":
    """Build an engine on the requested execution backend.

    ``backend=None`` uses :func:`get_default_backend`.  The parallel
    backend transparently degrades to serial execution whenever real
    process parallelism cannot be byte-identical (confined recovery,
    ``use_fast_path=False``, programs flagged ``parallel_safe=False``
    — see ``docs/parallel_backend.md``), so selecting it is always
    safe.
    """
    backend = backend or _default_backend
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {list(BACKENDS)}"
        )
    if backend == "parallel":
        from repro.bsp.parallel import ParallelPregelEngine

        return ParallelPregelEngine(graph, program, **engine_kwargs)
    return PregelEngine(graph, program, **engine_kwargs)


def run_program(
    graph: Graph,
    program: VertexProgram,
    backend: Optional[str] = None,
    **engine_kwargs,
) -> PregelResult:
    """Convenience wrapper: build an engine and run ``program``.

    All :class:`PregelEngine` keyword arguments pass through —
    including the fault-tolerance surface — plus ``backend`` to pick
    the execution backend (:func:`create_engine`)::

        run_program(g, PageRank(), checkpoint_interval=5,
                    fault_plan=crash_plan(superstep=7))
        run_program(g, PageRank(), backend="parallel", num_workers=4)
    """
    return create_engine(
        graph, program, backend=backend, **engine_kwargs
    ).run()
