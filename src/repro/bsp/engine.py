"""The simulated Pregel engine: synchronous BSP supersteps over
partitioned workers, with full cost instrumentation.

This is the substrate the paper's analysis assumes.  It executes real
``vertex.compute()`` programs with Pregel semantics:

* messages sent in superstep ``S`` are visible in superstep ``S + 1``;
* a vertex that votes to halt is skipped until a message wakes it;
* the run ends when every vertex is halted and no messages are in
  flight (or the master halts it);
* combiners reduce network traffic per (sending worker, destination);
* aggregator values reduced in ``S`` are readable in ``S + 1``;
* topology mutations requested in ``S`` apply before ``S + 1``.

Instead of real parallelism the engine *accounts* parallelism: every
superstep records per-worker local work ``w_i`` and message counts
``s_i``/``r_i``, from which the BSP cost model charges
``max(w, g·h, L)`` and the run reports the time-processor product
(§2.1).  An optional BPPA tracker observes per-vertex balance for the
§2.2 properties.

The engine also models the fault-tolerance story the real systems
depend on (``docs/fault_tolerance.md``): with ``checkpoint_interval``
set it snapshots engine state at superstep boundaries
(:mod:`repro.bsp.checkpoint`), and with a ``fault_plan``
(:mod:`repro.bsp.faults`) it survives injected worker crashes by
rolling back to the last checkpoint and replaying — or, with
``confined_recovery``, by recomputing only the crashed partition from
logged messages.  Message drop/duplicate/delay faults are masked by
the simulated reliable-delivery layer, so *any* faulted run that
completes produces byte-identical values to the fault-free run; only
the cost accounting (``RunStats.recovery_overhead``) differs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.bsp.checkpoint import (
    CheckpointStore,
    restore_checkpoint,
    restore_partition,
    take_checkpoint,
)
from repro.bsp.combiner import Combiner
from repro.bsp.context import ComputeContext, MasterContext
from repro.bsp.faults import FaultInjector, FaultPlan
from repro.bsp.program import VertexProgram
from repro.bsp.vertex import VertexState
from repro.bsp.worker import Worker
from repro.errors import (
    CheckpointError,
    MessageToUnknownVertexError,
    RecoveryExhaustedError,
    SuperstepLimitExceeded,
    WorkerCrashError,
)
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner
from repro.metrics.bppa import BppaObservation, BppaTracker
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats, SuperstepStats


@dataclass
class PregelResult:
    """Everything a run produces: answers plus measurements."""

    values: Dict[Hashable, Any]
    stats: RunStats
    bppa: Optional[BppaObservation]
    aggregate_history: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        return self.stats.num_supersteps

    @property
    def time_processor_product(self) -> float:
        return self.stats.time_processor_product


class PregelEngine:
    """Runs one :class:`VertexProgram` over one graph.

    Parameters
    ----------
    graph:
        The input graph.  Undirected edges are materialized as two
        directed runtime edges, as Pregel does.
    program:
        The vertex program to execute.
    num_workers:
        The simulated processor count ``p``.
    partitioner:
        ``vertex_id -> worker_index`` (default: hash partitioning).
    combiner:
        Optional sender-side message combiner.
    cost_model:
        BSP parameters ``g``, ``L`` and the checkpoint-write
        bandwidth ``c_ckpt`` (default ``g = L = 1``).
    max_supersteps:
        Hard bound; exceeding it raises
        :class:`~repro.errors.SuperstepLimitExceeded`.
    track_bppa:
        Record per-vertex balance factors (costs one ``state_size``
        call per active vertex per superstep).
    seed:
        Seed for ``ctx.random`` so randomized programs are
        reproducible.
    checkpoint_interval:
        Snapshot engine state every this many supersteps (plus a
        baseline at superstep 0).  ``None`` disables periodic
        checkpoints; a fault plan with crashes still gets the
        baseline so recovery is possible.
    fault_plan:
        A :class:`~repro.bsp.faults.FaultPlan` to inject during the
        run.  Crashes trigger rollback-and-replay; message faults are
        masked by reliable delivery and only add cost.
    max_recovery_attempts:
        How many times one superstep may crash-and-recover before the
        run raises :class:`~repro.errors.RecoveryExhaustedError`.
    confined_recovery:
        Recompute only the crashed worker's partition from logged
        messages instead of rolling every worker back (cheaper; falls
        back to full rollback when topology mutated since the last
        checkpoint; assumes ``compute`` does not draw from
        ``ctx.random``).
    """

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        num_workers: int = 4,
        partitioner=None,
        combiner: Optional[Combiner] = None,
        cost_model: Optional[BSPCostModel] = None,
        max_supersteps: int = 100_000,
        track_bppa: bool = True,
        seed: int = 0,
        checkpoint_interval: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_recovery_attempts: int = 3,
        confined_recovery: bool = False,
    ):
        self._graph = graph
        self._program = program
        self._num_workers = num_workers
        self._combiner = combiner
        self._cost_model = cost_model or BSPCostModel()
        self._max_supersteps = max_supersteps
        self.rng = random.Random(seed)

        partitioner = partitioner or HashPartitioner(num_workers)
        self._partitioner = partitioner
        self._workers = [Worker(i) for i in range(num_workers)]
        self._states: Dict[Hashable, VertexState] = {}
        self._owner: Dict[Hashable, int] = {}
        self._build_states()

        self._tracker: Optional[BppaTracker] = None
        if track_bppa:
            degrees = {
                v: graph.total_degree(v) for v in graph.vertices()
            }
            self._tracker = BppaTracker(degrees)

        # Superstep-scoped structures.
        self._ctx = ComputeContext(self)
        self._inbox: Dict[Hashable, List[Any]] = {}
        self._outbox: Dict[Hashable, List] = {}
        self._aggregators = dict(getattr(program, "aggregators", dict)())
        self._agg_current: Dict[str, Any] = {}
        self._agg_finalized: Dict[str, Any] = {}
        self._wake_all = False
        self._aggregate_history: List[Dict[str, Any]] = []

        # Fault tolerance: checkpointing, injection, recovery.
        if (
            checkpoint_interval is not None
            and checkpoint_interval < 1
        ):
            raise CheckpointError(
                "checkpoint_interval must be >= 1, got "
                f"{checkpoint_interval}"
            )
        if max_recovery_attempts < 1:
            raise ValueError(
                "max_recovery_attempts must be >= 1, got "
                f"{max_recovery_attempts}"
            )
        self._checkpoint_interval = checkpoint_interval
        self._fault_plan = fault_plan
        self._injector = (
            FaultInjector(fault_plan, num_workers)
            if fault_plan is not None
            else None
        )
        self._max_recovery_attempts = max_recovery_attempts
        self._confined_recovery = confined_recovery
        self._ckpt_store = CheckpointStore()
        self._ckpt_costs: Dict[int, float] = {}
        self._message_log: Dict[int, Dict[Hashable, List[Any]]] = {}
        self._wake_log: Dict[int, bool] = {}
        self._mutated_since_checkpoint = False
        self._replaying = False
        self._exec_counts: Dict[int, int] = {}
        self._crash_counts: Dict[int, int] = {}
        self._run_stats: Optional[RunStats] = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_states(self) -> None:
        g = self._graph
        for v in g.vertices():
            out_edges = {u: g.weight(v, u) for u in g.neighbors(v)}
            if g.directed:
                in_edges = {u: g.weight(u, v) for u in g.in_neighbors(v)}
            else:
                in_edges = out_edges
            state = VertexState(
                v,
                value=self._program.initial_value(v, g),
                out_edges=out_edges,
                in_edges=in_edges,
            )
            self._states[v] = state
            widx = self._partitioner(v) % self._num_workers
            self._owner[v] = widx
            self._workers[widx].vertex_ids.append(v)

    # ------------------------------------------------------------------
    # Engine services used by ComputeContext
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._states)

    def has_vertex(self, vertex_id: Hashable) -> bool:
        return vertex_id in self._states

    def _enqueue(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        if self._replaying:
            # Confined replay recomputes state only; every message the
            # original execution sent was already delivered (and
            # logged), so re-sends are suppressed.
            return
        if target not in self._states:
            raise MessageToUnknownVertexError(target)
        src_worker = self._owner[source]
        dst_worker = self._owner[target]
        self._outbox.setdefault(target, []).append(
            (src_worker, message)
        )
        self._workers[src_worker].sent_logical += 1
        if src_worker != dst_worker:
            self._workers[src_worker].sent_remote += 1

    def _aggregate(self, name: str, value: Any) -> None:
        if self._replaying:
            return
        agg = self._aggregators[name]
        current = self._agg_current.get(name, agg.initial())
        self._agg_current[name] = agg.reduce(current, value)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> PregelResult:
        """Execute the program to termination and return the result.

        Under fault injection the loop is a supervision loop: a
        checkpoint may be written before a superstep executes, an
        injected :class:`WorkerCrashError` rolls the run back to the
        last checkpoint (or triggers confined recovery) and execution
        resumes, with all recovery costs accounted in ``RunStats``.
        """
        stats = RunStats(
            num_workers=self._num_workers, cost_model=self._cost_model
        )
        self._run_stats = stats
        self._aggregate_history = []
        injector = self._injector
        tracker = self._tracker

        superstep = 0
        while True:
            if superstep >= self._max_supersteps:
                raise SuperstepLimitExceeded(
                    self._max_supersteps, self._program.name
                )
            if self._should_checkpoint(superstep):
                self._write_checkpoint(superstep, stats)
            try:
                if injector is not None:
                    injector.begin_superstep(superstep)
                done = self._execute_superstep(superstep, stats)
            except WorkerCrashError as crash:
                superstep = self._recover(crash, superstep, stats)
                continue
            superstep += 1
            if done:
                break

        if tracker is not None:
            tracker.observation.num_supersteps = stats.num_supersteps
        return PregelResult(
            values={v: s.value for v, s in self._states.items()},
            stats=stats,
            bppa=tracker.observation if tracker else None,
            aggregate_history=self._aggregate_history,
        )

    def _execute_superstep(
        self, superstep: int, stats: RunStats
    ) -> bool:
        """Run one superstep end to end; return True when the run is
        finished (master halt, or quiescence)."""
        program = self._program
        ctx = self._ctx
        tracker = self._tracker
        self._exec_counts[superstep] = (
            self._exec_counts.get(superstep, 0) + 1
        )

        for w in self._workers:
            w.reset_counters()
        self._outbox = {}
        self._agg_current = {
            name: agg.initial()
            for name, agg in self._aggregators.items()
        }
        ctx._begin_superstep(superstep, self._agg_finalized)

        active_count = 0
        wake_all = self._wake_all or superstep == 0
        self._wake_all = False
        if self._confined_recovery:
            self._wake_log[superstep] = wake_all
        for worker in self._workers:
            for vid in worker.vertex_ids:
                state = self._states.get(vid)
                if state is None:
                    continue
                messages = self._inbox.pop(vid, None)
                if messages:
                    state.halted = False
                elif state.halted and not wake_all:
                    continue
                elif wake_all:
                    state.halted = False
                messages = messages or []
                active_count += 1
                ctx._begin_vertex(state)
                program.compute(state, messages, ctx)
                ops = 1 + len(messages) + ctx._sent + ctx._charged
                worker.work += ops
                if tracker is not None:
                    tracker.record_vertex(
                        vid,
                        ctx._sent,
                        len(messages),
                        ops,
                        program.state_size(state),
                    )
        if tracker is not None:
            tracker.record_superstep()

        # Aggregators reduced this superstep become visible next.
        self._agg_finalized = dict(self._agg_current)
        self._aggregate_history.append(self._agg_finalized)

        pending = sum(len(v) for v in self._outbox.values())
        master = MasterContext(
            superstep=superstep,
            aggregates=self._agg_finalized,
            num_active=active_count,
            num_vertices=len(self._states),
            pending_messages=pending,
        )
        program.master_compute(master)

        self._apply_mutations()
        delivered = self._deliver(superstep)
        stats.supersteps.append(
            self._superstep_stats(superstep, active_count)
        )

        if master._halt:
            return True
        if master._activate_all:
            self._wake_all = True
        if delivered == 0 and not self._wake_all:
            if all(s.halted for s in self._states.values()):
                return True
        return False

    # ------------------------------------------------------------------
    # Checkpointing and recovery
    # ------------------------------------------------------------------

    @property
    def _checkpointing_enabled(self) -> bool:
        # Periodic checkpoints when an interval is set; a crash-bearing
        # fault plan forces at least the superstep-0 baseline so the
        # run can always recover.  Message-only fault plans need no
        # checkpoints (reliable delivery masks them).
        return self._checkpoint_interval is not None or (
            self._fault_plan is not None
            and self._fault_plan.has_crashes
        )

    def _should_checkpoint(self, superstep: int) -> bool:
        if not self._checkpointing_enabled:
            return False
        latest = self._ckpt_store.latest
        if latest is None:
            return True  # the superstep-0 baseline
        if self._checkpoint_interval is None:
            return False
        return (
            superstep - latest.superstep >= self._checkpoint_interval
        )

    def _write_checkpoint(
        self, superstep: int, stats: RunStats
    ) -> None:
        ckpt = self._ckpt_store.save(take_checkpoint(self, superstep))
        cost = self._cost_model.checkpoint_cost(ckpt.size)
        stats.checkpoints_written += 1
        stats.checkpoint_cost += cost
        self._ckpt_costs[superstep] = cost
        self._mutated_since_checkpoint = False
        if self._confined_recovery:
            # Logged messages before the checkpoint can never be
            # replayed again; reclaim them.
            self._message_log = {
                t: log
                for t, log in self._message_log.items()
                if t >= superstep
            }
            self._wake_log = {
                t: wake
                for t, wake in self._wake_log.items()
                if t >= superstep
            }

    def _recover(
        self, crash: WorkerCrashError, superstep: int, stats: RunStats
    ) -> int:
        """Handle an injected crash; return the superstep to resume at.

        Raises :class:`RecoveryExhaustedError` when the same superstep
        has crashed more than ``max_recovery_attempts`` times or no
        checkpoint exists to restore from.
        """
        attempts = self._crash_counts.get(superstep, 0) + 1
        self._crash_counts[superstep] = attempts
        if attempts > self._max_recovery_attempts:
            raise RecoveryExhaustedError(superstep, attempts) from crash
        ckpt = self._ckpt_store.latest
        if ckpt is None:
            raise RecoveryExhaustedError(superstep, attempts) from crash

        stats.recovery_attempts += 1
        # Exponential backoff before the restart: the k-th retry of a
        # superstep waits 2^(k-1) sync periods.
        stats.backoff_cost += self._cost_model.L * (
            2 ** (attempts - 1)
        )

        if self._confined_recovery and not self._mutated_since_checkpoint:
            self._confined_replay(crash, superstep, stats, ckpt)
            return superstep

        # Full rollback: discard the supersteps after the checkpoint
        # (their charge becomes replay cost — they will be re-executed
        # identically) and restore the snapshot.
        discarded = stats.supersteps[ckpt.superstep:]
        for entry in discarded:
            stats.replay_cost += entry.cost(self._cost_model)
        stats.supersteps_replayed += len(discarded)
        del stats.supersteps[ckpt.superstep:]
        restore_checkpoint(self, ckpt)
        return ckpt.superstep

    def _confined_replay(
        self,
        crash: WorkerCrashError,
        superstep: int,
        stats: RunStats,
        ckpt,
    ) -> None:
        """Rebuild only the crashed worker's partition.

        The healthy workers keep their live state; the crashed
        partition is restored from the checkpoint and its vertices'
        ``compute`` calls are replayed against the logged per-superstep
        inboxes, with outgoing messages and aggregator contributions
        suppressed (their effects are already in the live state of the
        other workers).  Replay work is charged as recovery cost but
        does not touch the committed superstep stats.
        """
        worker_idx = crash.worker % self._num_workers
        restore_partition(self, ckpt, worker_idx)
        worker = self._workers[worker_idx]
        program = self._program
        ctx = ComputeContext(self)
        replay_work = 0.0
        self._replaying = True
        try:
            for t in range(ckpt.superstep, superstep):
                prev_aggs = (
                    self._aggregate_history[t - 1] if t >= 1 else {}
                )
                ctx._begin_superstep(t, prev_aggs)
                wake_all = self._wake_log.get(t, t == 0)
                log_t = self._message_log.get(t, {})
                for vid in worker.vertex_ids:
                    state = self._states.get(vid)
                    if state is None:
                        continue
                    messages = log_t.get(vid)
                    if messages:
                        state.halted = False
                    elif state.halted and not wake_all:
                        continue
                    elif wake_all:
                        state.halted = False
                    messages = list(messages) if messages else []
                    ctx._begin_vertex(state)
                    program.compute(state, messages, ctx)
                    replay_work += (
                        1 + len(messages) + ctx._sent + ctx._charged
                    )
        finally:
            self._replaying = False
        # The crashed worker lost its incoming queue for the current
        # superstep; restore it from the delivery log.
        log_now = self._message_log.get(superstep, {})
        for vid in worker.vertex_ids:
            if vid in log_now:
                self._inbox[vid] = list(log_now[vid])
            else:
                self._inbox.pop(vid, None)
        stats.replay_cost += replay_work
        stats.supersteps_replayed += superstep - ckpt.superstep

    # ------------------------------------------------------------------
    # Superstep boundary
    # ------------------------------------------------------------------

    def _superstep_stats(
        self, superstep: int, active: int
    ) -> SuperstepStats:
        ws = self._workers
        return SuperstepStats(
            superstep=superstep,
            work=[w.work for w in ws],
            sent_logical=[w.sent_logical for w in ws],
            received_logical=[w.received_logical for w in ws],
            sent_network=[w.sent_network for w in ws],
            received_network=[w.received_network for w in ws],
            active_vertices=active,
            sent_remote=[w.sent_remote for w in ws],
            checkpoint_cost=self._ckpt_costs.get(superstep, 0.0),
            executions=self._exec_counts.get(superstep, 1),
        )

    def _apply_mutations(self) -> None:
        log = self._ctx._mutations
        if log.is_empty():
            return
        self._mutated_since_checkpoint = True
        directed = self._graph.directed
        for u, v in log.remove_edges:
            src = self._states.get(u)
            if src is not None:
                src.out_edges.pop(v, None)
            if directed:
                dst = self._states.get(v)
                if dst is not None:
                    dst.in_edges.pop(u, None)
        for vid in log.remove_vertices:
            state = self._states.pop(vid, None)
            if state is None:
                continue
            for src in list(state.in_edges):
                other = self._states.get(src)
                if other is not None:
                    other.out_edges.pop(vid, None)
            if directed:
                for dst in list(state.out_edges):
                    other = self._states.get(dst)
                    if other is not None:
                        other.in_edges.pop(vid, None)
            # Pending outbox messages for vid stay put: _deliver sees
            # the missing destination, drops them and reverses the
            # senders' charges so the logical books balance.
            self._inbox.pop(vid, None)
        for vid, value in log.add_vertices:
            if vid in self._states:
                continue
            state = VertexState(vid, value=value, out_edges={})
            if directed:
                state.in_edges = {}
            self._states[vid] = state
            widx = self._partitioner(vid) % self._num_workers
            self._owner[vid] = widx
            self._workers[widx].vertex_ids.append(vid)
        for u, v, weight in log.add_edges:
            src = self._states.get(u)
            if src is None:
                continue
            src.out_edges[v] = weight
            if directed:
                dst = self._states.get(v)
                if dst is not None:
                    dst.in_edges[u] = weight
        log.clear()

    def _deliver(self, superstep: int) -> int:
        """Move the outbox into next superstep's inbox.

        Applies the combiner per (destination, sending worker),
        accounts network traffic, charges ``received_logical`` at
        delivery time (so send/receive totals balance even when a
        mutation removed the destination — the sender's charges are
        reversed for such dropped messages), and runs the injected
        network faults through the reliable-delivery layer.  Returns
        the number of logical messages delivered.
        """
        delivered = 0
        combiner = self._combiner
        inbox = self._inbox
        injector = self._injector
        log_deliveries = self._confined_recovery
        log_entry: Dict[Hashable, List[Any]] = {}
        retransmitted = duplicated = delayed = 0
        for target, entries in self._outbox.items():
            if target not in self._states:
                # Destination removed by a mutation this superstep:
                # the messages are dropped, so reverse the senders'
                # charges to keep the logical books balanced.
                dst_idx = self._owner.get(target)
                for src_worker, _ in entries:
                    w = self._workers[src_worker]
                    w.sent_logical -= 1
                    if dst_idx is None or src_worker != dst_idx:
                        w.sent_remote -= 1
                continue
            dst_worker = self._workers[self._owner[target]]
            dst_worker.received_logical += len(entries)
            if combiner is None:
                msgs = [m for _, m in entries]
                for src_worker, _ in entries:
                    self._workers[src_worker].sent_network += 1
                dst_worker.received_network += len(entries)
            else:
                groups: Dict[int, Any] = {}
                for src_worker, m in entries:
                    if src_worker in groups:
                        groups[src_worker] = combiner.combine(
                            groups[src_worker], m
                        )
                    else:
                        groups[src_worker] = m
                msgs = list(groups.values())
                for src_worker in groups:
                    self._workers[src_worker].sent_network += 1
                dst_worker.received_network += len(groups)
            if injector is not None:
                faults = injector.network_faults(len(msgs))
                retransmitted += faults.retransmitted
                duplicated += faults.duplicated
                delayed += faults.delayed
            inbox.setdefault(target, []).extend(msgs)
            if log_deliveries:
                log_entry[target] = list(inbox[target])
            delivered += len(msgs)
        if log_deliveries:
            self._message_log[superstep + 1] = log_entry
        if injector is not None:
            stats = self._run_stats
            stats.retransmitted_messages += retransmitted
            stats.duplicate_messages += duplicated
            if delayed:
                stats.delay_stalls += 1
        self._outbox = {}
        return delivered


def run_program(
    graph: Graph, program: VertexProgram, **engine_kwargs
) -> PregelResult:
    """Convenience wrapper: build an engine and run ``program``.

    All :class:`PregelEngine` keyword arguments pass through —
    including the fault-tolerance surface::

        run_program(g, PageRank(), checkpoint_interval=5,
                    fault_plan=crash_plan(superstep=7))
    """
    return PregelEngine(graph, program, **engine_kwargs).run()
