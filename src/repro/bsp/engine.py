"""The simulated Pregel engine: a thin composition of the shared
runtime layers.

This is the substrate the paper's analysis assumes.  It executes real
``vertex.compute()`` programs with Pregel semantics:

* messages sent in superstep ``S`` are visible in superstep ``S + 1``;
* a vertex that votes to halt is skipped until a message wakes it;
* the run ends when every vertex is halted and no messages are in
  flight (or the master halts it);
* combiners reduce network traffic per (sending worker, destination);
* aggregator values reduced in ``S`` are readable in ``S + 1``;
* topology mutations requested in ``S`` apply before ``S + 1``.

Instead of real parallelism the engine *accounts* parallelism: every
superstep records per-worker local work ``w_i`` and message counts
``s_i``/``r_i``, from which the BSP cost model charges
``max(w, g·h, L)`` and the run reports the time-processor product
(§2.1).  An optional BPPA tracker observes per-vertex balance for the
§2.2 properties.

Layering (``docs/architecture.md``)
-----------------------------------

The engine itself owns only the Pregel-specific policy — aggregator
semantics, master compute, vote-to-halt termination, the superstep
protocol order.  Everything else is composed from the shared layers
that also host the GAS/block/async engines:

* :class:`~repro.bsp.loop.SuperstepLoop` — scheduling, the
  max-superstep guard, the checkpoint schedule
  (:class:`~repro.bsp.loop.CheckpointPolicy`), fault-injector arming,
  and the crash-supervision protocol;
* :class:`~repro.bsp.fabric.MessageFabric` — both mailbox layouts
  (reference dicts and dense slots), the send/fanout entry points,
  combining, ledger accounting, and fault-injected delivery;
* :class:`~repro.bsp.state.StateStore` — the partitioned vertex
  states, the owner map, and the recovery bookkeeping (checkpoint
  store, confined-recovery logs);
* the compute kernels (:mod:`repro.bsp.kernels`) — the per-superstep
  vertex-execution loops for each mailbox layout.

Both execution paths (``docs/performance.md``) execute vertices, fold
combiners, deliver messages and draw injected faults in exactly the
same order, so a run produces **byte-identical** :class:`PregelResult`
values, ``RunStats``, and BPPA observations on either path — including
under checkpointing and fault plans.  The fast path engages
automatically and disengages for the rest of the run the first time a
topology mutation is applied (dense ids are frozen);
``confined_recovery`` runs use the reference path throughout, because
confined replay re-executes single partitions against logged
per-vertex inboxes.  A third path — real process parallelism over the
dense layout — lives in :mod:`repro.bsp.parallel` and is selected with
``backend="parallel"`` via :func:`create_engine`/:func:`run_program`.

The fault-tolerance story (``docs/fault_tolerance.md``): with
``checkpoint_interval`` set the engine snapshots state at superstep
boundaries (:mod:`repro.bsp.checkpoint`), and with a ``fault_plan``
(:mod:`repro.bsp.faults`) it survives injected worker crashes by
rolling back and replaying — or, with ``confined_recovery``, by
recomputing only the crashed partition from logged messages.  Message
drop/duplicate/delay faults are masked by the simulated
reliable-delivery layer, so *any* faulted run that completes produces
byte-identical values to the fault-free run; only the cost accounting
(``RunStats.recovery_overhead``) differs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.bsp.checkpoint import restore_checkpoint, take_checkpoint
from repro.bsp.combiner import Combiner
from repro.bsp.context import ComputeContext, MasterContext
from repro.bsp.durability import (
    build_run_context,
    config_fingerprint,
    open_durable_store,
    resume_engine,
)
from repro.bsp.fabric import MessageFabric
from repro.bsp.faults import FaultInjector, FaultPlan
from repro.bsp.kernels import (
    fast_compute_pass,
    has_vectorized_kernel,
    reference_compute_pass,
)
from repro.bsp.loop import (
    CheckpointPolicy,
    SuperstepLoop,
    emit_superstep_commit,
    emit_superstep_start,
)
from repro.bsp.program import VertexProgram
from repro.bsp.state import StateStore, apply_mutations, confined_replay
from repro.bsp.worker import superstep_profile
from repro.errors import WorkerCrashError
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner
from repro.metrics.bppa import BppaObservation, BppaTracker
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import (
    RunStats,
    SuperstepStats,
    SuperstepWall,
    peak_rss_bytes,
)
from repro.trace.events import CheckpointWrite, Handoff
from repro.trace.recorder import TraceRecorder, get_default_trace


@dataclass
class PregelResult:
    """Everything a run produces: answers plus measurements."""

    values: Dict[Hashable, Any]
    stats: RunStats
    bppa: Optional[BppaObservation]
    aggregate_history: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        return self.stats.num_supersteps

    @property
    def time_processor_product(self) -> float:
        return self.stats.time_processor_product


class PregelEngine:
    """Runs one :class:`VertexProgram` over one graph.

    Parameters
    ----------
    graph:
        The input graph.  Undirected edges are materialized as two
        directed runtime edges, as Pregel does.
    program:
        The vertex program to execute.
    num_workers:
        The simulated processor count ``p``.
    partitioner:
        ``vertex_id -> worker_index`` (default: hash partitioning).
    combiner:
        Optional sender-side message combiner.
    cost_model:
        BSP parameters ``g``, ``L`` and the checkpoint-write
        bandwidth ``c_ckpt`` (default ``g = L = 1``).
    max_supersteps:
        Hard bound; exceeding it raises
        :class:`~repro.errors.SuperstepLimitExceeded`.
    track_bppa:
        Record per-vertex balance factors (costs one ``state_size``
        call per active vertex per superstep).
    seed:
        Seed for ``ctx.random`` so randomized programs are
        reproducible.
    checkpoint_interval:
        Snapshot engine state every this many supersteps (plus a
        baseline at superstep 0).  ``None`` disables periodic
        checkpoints; a fault plan with crashes still gets the
        baseline so recovery is possible.
    fault_plan:
        A :class:`~repro.bsp.faults.FaultPlan` to inject during the
        run.  Crashes trigger rollback-and-replay; message faults are
        masked by reliable delivery and only add cost.
    max_recovery_attempts:
        How many times one superstep may crash-and-recover before the
        run raises :class:`~repro.errors.RecoveryExhaustedError`.
    confined_recovery:
        Recompute only the crashed worker's partition from logged
        messages instead of rolling every worker back (cheaper; falls
        back to full rollback when topology mutated since the last
        checkpoint; assumes ``compute`` does not draw from
        ``ctx.random``).  Forces the reference execution path.
    checkpoint_dir:
        Directory for durable on-disk checkpoints
        (:mod:`repro.bsp.durability`): each scheduled checkpoint is
        also persisted atomically (CRC-32 checksum, fingerprinted
        manifest), so the run survives process death.
    resume:
        With ``checkpoint_dir``: ``True`` resumes from the newest
        intact durable checkpoint, byte-identically to the
        uninterrupted run (typed ``CheckpointError`` when there is
        none, ``FingerprintMismatchError`` for a directory written by
        a different configuration); ``"auto"`` resumes when possible
        and starts fresh otherwise.
    use_fast_path:
        ``None`` (default): engage the dense-index fast path unless
        ``confined_recovery`` is set.  ``False``: force the reference
        dict path (the equivalence oracle).  ``True``: require the
        fast path; raises :class:`ValueError` when combined with
        ``confined_recovery``.  Either way the first applied topology
        mutation permanently falls back to the reference path.
    use_vectorized:
        ``None`` (default): on the fast path, run supersteps through
        the program's registered vectorized kernel whenever its
        exact-reproduction proof holds, silently falling back to the
        per-vertex dense pass otherwise (fault-injected runs stay
        per-vertex throughout).  ``False``: never vectorize.
        ``True``: require the capability — raises
        :class:`ValueError` unless the fast path is enabled and the
        program class has a registered kernel (per-superstep fallback
        still applies; the tier actually used each superstep is
        recorded in ``SuperstepWall.kernel_tier`` and the workers'
        trace profiles).  Not part of the checkpoint fingerprint:
        the tiers are byte-identical, so resume across them is legal.
    memory_budget:
        Soft cap, in encoded bytes, on one superstep's buffered
        message volume on the dense fast path.  When set, finished
        accumulator lanes are byte-accounted in the shm-transport
        column encoding and lanes past the budget spill to disk,
        replayed in worker order at delivery — results stay
        byte-identical to an unbudgeted run.  ``None`` (default)
        disables the spill tier entirely.
    spill_dir:
        Directory for spill files (created if missing).  ``None``
        (default) uses a private temp directory, removed when the
        run finishes.
    trace:
        A :class:`~repro.trace.recorder.TraceRecorder` to receive the
        run's structured events (superstep lifecycle, per-worker
        profiles, checkpoint writes, rollbacks, injected faults, path
        handoffs — see :mod:`repro.trace`).  ``None`` (default) falls
        back to the process-wide recorder set via
        :func:`~repro.trace.recorder.set_default_trace`, and tracing
        is off when neither is set — every emission site guards on a
        single ``None``-check, so an untraced run pays nothing else.
    """

    #: Which execution backend this engine class implements; the
    #: process-parallel subclass overrides it with ``"parallel"``.
    backend_name = "serial"

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        num_workers: int = 4,
        partitioner=None,
        combiner: Optional[Combiner] = None,
        cost_model: Optional[BSPCostModel] = None,
        max_supersteps: int = 100_000,
        track_bppa: bool = True,
        seed: int = 0,
        checkpoint_interval: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_recovery_attempts: int = 3,
        confined_recovery: bool = False,
        checkpoint_dir: Optional[str] = None,
        resume=False,
        use_fast_path: Optional[bool] = None,
        use_vectorized: Optional[bool] = None,
        memory_budget: Optional[int] = None,
        spill_dir: Optional[str] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        if memory_budget is not None and memory_budget < 1:
            raise ValueError(
                f"memory_budget must be >= 1 byte, got "
                f"{memory_budget!r}"
            )
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got "
                f"{checkpoint_interval!r}"
            )
        if max_recovery_attempts < 0:
            raise ValueError(
                f"max_recovery_attempts must be >= 0, got "
                f"{max_recovery_attempts!r}"
            )
        if resume and checkpoint_dir is None:
            raise ValueError(
                "resume requires checkpoint_dir (the durable "
                "checkpoint directory to resume from)"
            )
        self._graph = graph
        self._program = program
        self._num_workers = num_workers
        self._combiner = combiner
        self._cost_model = cost_model or BSPCostModel()
        self._max_supersteps = max_supersteps
        self._trace = trace if trace is not None else get_default_trace()
        self.rng = random.Random(seed)

        partitioner = partitioner or HashPartitioner(num_workers)
        self._partitioner = partitioner
        self._store = StateStore(graph, program, partitioner, num_workers)

        self._tracker: Optional[BppaTracker] = None
        if track_bppa:
            degrees = {
                v: graph.total_degree(v) for v in graph.vertices()
            }
            self._tracker = BppaTracker(degrees)

        # Superstep-scoped structures.  The fabric owns every mailbox;
        # the engine keeps the aggregator registry and master state.
        self._fabric = MessageFabric(
            self,
            self._store,
            combiner,
            memory_budget=memory_budget,
            spill_dir=spill_dir,
        )
        self._ctx = ComputeContext(self)
        self._aggregators = dict(getattr(program, "aggregators", dict)())
        self._agg_current: Dict[str, Any] = {}
        self._agg_finalized: Dict[str, Any] = {}
        self._wake_all = False
        self._aggregate_history: List[Dict[str, Any]] = []

        # Fault tolerance: the loop owns the schedule and the crash
        # protocol; the store owns the snapshots and replay logs.
        self._checkpoint_interval = checkpoint_interval
        self._fault_plan = fault_plan
        self._injector = (
            FaultInjector(fault_plan, num_workers)
            if fault_plan is not None
            else None
        )
        self._max_recovery_attempts = max_recovery_attempts
        self._confined_recovery = confined_recovery
        # Durable checkpoints: swap the in-memory store for the
        # on-disk one before the policy captures it (the fingerprint
        # makes a resume against a different configuration fail
        # loudly — see repro.bsp.durability).
        self._checkpoint_dir = checkpoint_dir
        self._resume_state = None
        if checkpoint_dir is not None:
            fingerprint = config_fingerprint(
                graph,
                program,
                num_workers=num_workers,
                seed=seed,
                checkpoint_interval=checkpoint_interval,
                max_recovery_attempts=max_recovery_attempts,
                confined_recovery=confined_recovery,
                use_fast_path=use_fast_path,
                track_bppa=track_bppa,
                combiner=combiner,
                partitioner=partitioner,
                cost_model=self._cost_model,
                fault_plan=fault_plan,
            )
            self._store.ckpt_store = open_durable_store(
                checkpoint_dir, fingerprint, resume
            )
            self._resume_state = self._store.ckpt_store.resume_state()
        self._policy = CheckpointPolicy(
            checkpoint_interval, fault_plan, self._store.ckpt_store
        )
        self._loop = SuperstepLoop(
            max_supersteps=max_supersteps,
            program_name=program.name,
            num_workers=num_workers,
            cost_model=self._cost_model,
            injector=self._injector,
            policy=self._policy,
            trace=self._trace,
            max_recovery_attempts=max_recovery_attempts,
            on_limit="raise",
        )
        self._replaying = False
        self._exec_counts: Dict[int, int] = {}
        self._run_stats: Optional[RunStats] = None

        # Execution-path selection (dense fast path vs reference).
        if use_fast_path and confined_recovery:
            raise ValueError(
                "the dense fast path cannot run under confined "
                "recovery (confined replay needs the per-vertex "
                "message log of the reference path)"
            )
        if use_fast_path is None:
            use_fast_path = not confined_recovery
        self._fast_enabled = bool(use_fast_path)
        if use_vectorized:
            if not self._fast_enabled:
                raise ValueError(
                    "use_vectorized=True requires the dense fast path "
                    "(it cannot combine with use_fast_path=False or "
                    "confined_recovery)"
                )
            if not has_vectorized_kernel(type(program)):
                raise ValueError(
                    "use_vectorized=True but no vectorized kernel is "
                    f"registered for {type(program).__name__}"
                )
        self._use_vectorized = use_vectorized
        self._kernel_tier = "reference"
        self._vector_kernel_cache = None
        self._enqueue = self._fabric.enqueue
        self._fanout = self._fabric.fanout
        if self._fast_enabled:
            self._fabric.engage_fast_path()

    # ------------------------------------------------------------------
    # Layer views (compat surface shared with checkpoint/parallel code)
    # ------------------------------------------------------------------

    @property
    def _states(self) -> Dict[Hashable, Any]:
        return self._store.states

    @_states.setter
    def _states(self, states: Dict[Hashable, Any]) -> None:
        # A checkpoint restore swaps the whole dict; refresh the
        # fabric's hot-path mirror alongside the store.
        self._store.states = states
        self._fabric.states = states

    @property
    def _owner(self) -> Dict[Hashable, int]:
        return self._store.owner

    @_owner.setter
    def _owner(self, owner: Dict[Hashable, int]) -> None:
        self._store.owner = owner
        self._fabric.owner = owner

    @property
    def _workers(self):
        return self._store.workers

    @property
    def _fast_active(self) -> bool:
        return self._fabric.fast_active

    @property
    def _ckpt_store(self):
        return self._store.ckpt_store

    @property
    def _ckpt_costs(self) -> Dict[int, float]:
        return self._store.ckpt_costs

    @property
    def _message_log(self):
        return self._store.message_log

    @property
    def _wake_log(self):
        return self._store.wake_log

    @property
    def _mutated_since_checkpoint(self) -> bool:
        return self._store.mutated_since_checkpoint

    @property
    def _crash_counts(self) -> Dict[int, int]:
        return self._loop.crash_counts

    # ------------------------------------------------------------------
    # Engine services used by ComputeContext
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._store.states)

    @property
    def fast_path(self) -> bool:
        """True while the dense-index fast path is engaged."""
        return self._fabric.fast_active

    def has_vertex(self, vertex_id: Hashable) -> bool:
        return vertex_id in self._store.states

    def _aggregate(self, name: str, value: Any) -> None:
        if self._replaying:
            return
        # _agg_current is pre-seeded with every registered
        # aggregator's initial() at superstep start, so an unknown
        # name raises KeyError exactly as the registry lookup would.
        current = self._agg_current
        current[name] = self._aggregators[name].reduce(
            current[name], value
        )

    # ------------------------------------------------------------------
    # Execution-path management (delegated to the fabric; kept as
    # engine methods because checkpoint restore and the parallel
    # backend hook them here)
    # ------------------------------------------------------------------

    def _engage_fast_path(self) -> None:
        self._fabric.engage_fast_path()

    def _disengage_fast_path(self) -> None:
        self._fabric.disengage_fast_path()

    def _reset_execution_path(self, fast: bool) -> None:
        self._fabric.reset_execution_path(fast)

    def _post_restore_sync(self) -> None:
        """Hook invoked by :func:`~repro.bsp.checkpoint.
        restore_checkpoint` after a full rollback has rebuilt the
        engine state.  The serial engine needs nothing; the process-
        parallel backend overrides this to push the restored
        partitions back out to its worker processes (respawning any
        that were killed by an injected crash)."""

    def _inbox_snapshot_items(self):
        return self._fabric.inbox_snapshot_items()

    def _restore_inbox(self, inbox: Dict[Hashable, List[Any]]) -> None:
        self._fabric.restore_inbox(inbox)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> PregelResult:
        """Execute the program to termination and return the result.

        The shared :class:`~repro.bsp.loop.SuperstepLoop` supervises
        the run: a checkpoint may be written before a superstep
        executes, an injected :class:`WorkerCrashError` rolls the run
        back to the last checkpoint (or triggers confined recovery)
        and execution resumes, with all recovery costs accounted in
        ``RunStats``.
        """
        stats = RunStats(
            num_workers=self._num_workers, cost_model=self._cost_model
        )
        self._aggregate_history = []
        start_superstep = 0
        if self._resume_state is not None:
            ckpt, context = self._resume_state
            self._resume_state = None
            start_superstep, stats = resume_engine(self, ckpt, context)
        self._run_stats = stats
        tracker = self._tracker

        try:
            self._loop.run(self, stats, start_superstep=start_superstep)
        finally:
            self._fabric.cleanup_spill()

        stats.peak_rss_bytes = peak_rss_bytes()
        if tracker is not None:
            tracker.observation.num_supersteps = stats.num_supersteps
        return PregelResult(
            values={
                v: s.value for v, s in self._store.states.items()
            },
            stats=stats,
            bppa=tracker.observation if tracker else None,
            aggregate_history=self._aggregate_history,
        )

    def _execute_superstep(
        self, superstep: int, stats: RunStats
    ) -> bool:
        """Run one superstep end to end; return True when the run is
        finished (master halt, or quiescence)."""
        program = self._program
        ctx = self._ctx
        tracker = self._tracker
        fabric = self._fabric
        self._exec_counts[superstep] = (
            self._exec_counts.get(superstep, 0) + 1
        )
        trace = self._trace
        if trace is not None:
            emit_superstep_start(
                trace,
                superstep,
                self._exec_counts[superstep],
                "fast" if fabric.fast_active else "reference",
                self.backend_name,
            )

        for w in fabric.workers:
            w.reset_counters()
        fast = fabric.fast_active
        if not fast:
            fabric.reset_outbox()
        self._agg_current = {
            name: agg.initial()
            for name, agg in self._aggregators.items()
        }
        ctx._begin_superstep(superstep, self._agg_finalized)

        wake_all = self._wake_all or superstep == 0
        self._wake_all = False
        if self._confined_recovery:
            self._store.wake_log[superstep] = wake_all
        if fast:
            active_count = self._compute_pass_fast(wake_all)
            pending = fabric.out_pending
        else:
            active_count = self._compute_pass_reference(wake_all)
            pending = sum(len(v) for v in fabric.outbox.values())
        if tracker is not None:
            tracker.record_superstep()

        # Aggregators reduced this superstep become visible next.
        self._agg_finalized = dict(self._agg_current)
        self._aggregate_history.append(self._agg_finalized)

        master = MasterContext(
            superstep=superstep,
            aggregates=self._agg_finalized,
            num_active=active_count,
            num_vertices=len(self._store.states),
            pending_messages=pending,
        )
        program.master_compute(master)

        removed = self._apply_mutations()
        mutated = removed is not None
        if fast:
            delivered = fabric.deliver_fast(superstep, mutated)
            if mutated:
                # The frozen dense index no longer matches the
                # topology: hand the undelivered inbox to the
                # reference path and stay there.
                if trace is not None:
                    trace.emit(
                        Handoff(
                            superstep=superstep,
                            from_path="fast",
                            to_path="reference",
                            reason="topology mutation froze the "
                            "dense index",
                        )
                    )
                self._disengage_fast_path()
        else:
            delivered = fabric.deliver(superstep)
        if removed:
            # The senders' charges for messages to removed vertices
            # were reversed during delivery; the ownership entries can
            # now be reclaimed (re-added ids were already discarded
            # from ``removed`` by _apply_mutations).
            owner = self._store.owner
            for vid in removed:
                owner.pop(vid, None)
        entry = self._superstep_stats(superstep, active_count)
        stats.supersteps.append(entry)
        ws = fabric.workers
        stats.record_wall(
            SuperstepWall(
                superstep=superstep,
                compute_seconds=[w.wall_seconds for w in ws],
                barrier_seconds=[w.barrier_seconds for w in ws],
                payload_bytes=[w.payload_bytes for w in ws],
                kernel_tier=self._kernel_tier,
                peak_rss_bytes=peak_rss_bytes(),
            )
        )
        if trace is not None:
            # The barrier block: per-worker profiles in rank order
            # (on the parallel backend the coordinator filled the
            # Worker objects from the rank payloads in rank order, so
            # the merged stream is deterministic), the h-relation, and
            # the committed superstep's cost attribution.
            emit_superstep_commit(
                trace, fabric.workers, entry, self._cost_model, delivered
            )

        if master._halt:
            return True
        if master._activate_all:
            self._wake_all = True
        if delivered == 0 and not self._wake_all:
            if all(
                s.halted for s in self._store.states.values()
            ):
                return True
        return False

    def _compute_pass_reference(self, wake_all: bool) -> int:
        self._kernel_tier = "reference"
        return reference_compute_pass(self, wake_all)

    def _compute_pass_fast(self, wake_all: bool) -> int:
        return fast_compute_pass(self, wake_all)

    # ------------------------------------------------------------------
    # Checkpointing and recovery
    # ------------------------------------------------------------------

    @property
    def _checkpointing_enabled(self) -> bool:
        return self._policy.enabled

    def _should_checkpoint(self, superstep: int) -> bool:
        return self._policy.due(superstep)

    def _write_checkpoint(
        self, superstep: int, stats: RunStats
    ) -> None:
        store = self._store
        ckpt = store.ckpt_store.save(take_checkpoint(self, superstep))
        cost = self._cost_model.checkpoint_cost(ckpt.size)
        stats.checkpoints_written += 1
        stats.checkpoint_cost += cost
        store.ckpt_costs[superstep] = cost
        store.mutated_since_checkpoint = False
        if self._trace is not None:
            self._trace.emit(
                CheckpointWrite(
                    superstep=superstep, size=ckpt.size, cost=cost
                )
            )
        if self._confined_recovery:
            # Logged messages before the checkpoint can never be
            # replayed again; reclaim them.
            store.prune_logs(superstep)
        if store.ckpt_store.durable:
            # Persist last, once all checkpoint accounting is done, so
            # the on-disk context matches the uninterrupted run's
            # state at this boundary exactly.
            store.ckpt_store.persist(
                ckpt, build_run_context(self, stats)
            )

    def _latest_checkpoint(self):
        return self._store.ckpt_store.latest

    def _recover(
        self, crash: WorkerCrashError, superstep: int, stats: RunStats
    ) -> int:
        """Handle an injected crash; return the superstep to resume
        at.  Delegates to the shared supervision protocol
        (:meth:`~repro.bsp.loop.SuperstepLoop.recover`), which calls
        back into :meth:`_rollback`."""
        return self._loop.recover(self, crash, superstep, stats)

    def _rollback(
        self,
        crash: WorkerCrashError,
        superstep: int,
        stats: RunStats,
        ckpt,
    ) -> int:
        if (
            self._confined_recovery
            and not self._store.mutated_since_checkpoint
        ):
            self._confined_replay(crash, superstep, stats, ckpt)
            return superstep

        # Full rollback: discard the supersteps after the checkpoint
        # (their charge becomes replay cost — they will be re-executed
        # identically) and restore the snapshot.
        discarded = stats.supersteps[ckpt.superstep:]
        for entry in discarded:
            stats.replay_cost += entry.cost(self._cost_model)
        stats.supersteps_replayed += len(discarded)
        del stats.supersteps[ckpt.superstep:]
        restore_checkpoint(
            self, ckpt, discarded_supersteps=len(discarded)
        )
        return ckpt.superstep

    def _confined_replay(
        self,
        crash: WorkerCrashError,
        superstep: int,
        stats: RunStats,
        ckpt,
    ) -> None:
        confined_replay(self, crash, superstep, stats, ckpt)

    # ------------------------------------------------------------------
    # Superstep boundary
    # ------------------------------------------------------------------

    def _superstep_stats(
        self, superstep: int, active: int
    ) -> SuperstepStats:
        return superstep_profile(
            self._store.workers,
            superstep,
            active,
            checkpoint_cost=self._store.ckpt_costs.get(superstep, 0.0),
            executions=self._exec_counts.get(superstep, 1),
        )

    def _apply_mutations(self) -> Optional[Set[Hashable]]:
        return apply_mutations(self)


# ---------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------

#: Names accepted by :func:`create_engine` / ``run_program(backend=)``.
BACKENDS = ("serial", "parallel")

_default_backend = "serial"


def set_default_backend(backend: str) -> None:
    """Set the engine backend used when none is passed explicitly.

    ``"serial"`` (the default and the correctness oracle) executes the
    logical workers one after another in-process; ``"parallel"``
    executes them as real OS processes (:mod:`repro.bsp.parallel`)
    with byte-identical results.  Threaded through the CLI as
    ``repro-table1 --backend``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {list(BACKENDS)}"
        )
    global _default_backend
    _default_backend = backend


def get_default_backend() -> str:
    """The backend :func:`create_engine` uses when none is given."""
    return _default_backend


def create_engine(
    graph: Graph,
    program: VertexProgram,
    backend: Optional[str] = None,
    **engine_kwargs,
) -> "PregelEngine":
    """Build an engine on the requested execution backend.

    ``backend=None`` uses :func:`get_default_backend`.  The parallel
    backend transparently degrades to serial execution whenever real
    process parallelism cannot be byte-identical (confined recovery,
    ``use_fast_path=False``, programs flagged ``parallel_safe=False``
    — see ``docs/parallel_backend.md``), so selecting it is always
    safe.  Backend-specific kwargs pass through — notably the
    parallel backend's ``transport=`` tier selector.
    """
    backend = backend or _default_backend
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {list(BACKENDS)}"
        )
    if backend == "parallel":
        from repro.bsp.parallel import ParallelPregelEngine

        return ParallelPregelEngine(graph, program, **engine_kwargs)
    return PregelEngine(graph, program, **engine_kwargs)


def run_program(
    graph: Graph,
    program: VertexProgram,
    backend: Optional[str] = None,
    **engine_kwargs,
) -> PregelResult:
    """Convenience wrapper: build an engine and run ``program``.

    All :class:`PregelEngine` keyword arguments pass through —
    including the fault-tolerance surface — plus ``backend`` to pick
    the execution backend (:func:`create_engine`)::

        run_program(g, PageRank(), checkpoint_interval=5,
                    fault_plan=crash_plan(superstep=7))
        run_program(g, PageRank(), backend="parallel", num_workers=4)
    """
    return create_engine(
        graph, program, backend=backend, **engine_kwargs
    ).run()
