"""A subgraph-centric ("think like a graph") engine — the
Giraph++/NScale paradigm the paper's §1 lists and §3.8 prescribes for
neighborhood analytics.

Vertices are grouped into *blocks* (one per worker partition); a
superstep runs one ``compute`` per block, which may do arbitrary
sequential work over its whole local subgraph and message any vertex
in the graph (delivery routes to the owning block).  Internal
traffic — vertex-to-vertex within a block — costs nothing on the
network; only cross-block messages are charged, which is exactly the
advantage §3.8's triangle/LCC discussion appeals to.

The cost accounting reuses :class:`~repro.metrics.stats.RunStats`:
per-block local work, logical/remote messages, and the BSP superstep
charge ``max(w, g·h, L)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.bsp.worker import Worker
from repro.errors import MessageToUnknownVertexError
from repro.graph.graph import Graph
from repro.graph.partition import BfsGrowPartitioner
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats, SuperstepStats


@dataclass
class BlockView:
    """What a block program sees: its slice of the graph.

    Attributes
    ----------
    index:
        The block (worker) index.
    vertices:
        The vertex ids owned by this block.
    subgraph:
        The induced subgraph on the owned vertices.
    boundary:
        ``{internal vertex: [external neighbors]}`` for every owned
        vertex with at least one cross-block edge.
    values:
        Shared per-vertex value store for the owned vertices
        (mutating it is the block's way of producing output).
    """

    index: int
    vertices: Set[Hashable]
    subgraph: Graph
    boundary: Dict[Hashable, List[Hashable]]
    values: Dict[Hashable, Any] = field(default_factory=dict)


class BlockContext:
    """Messaging and accounting surface for block programs."""

    def __init__(self, engine, block_index: int):
        self._engine = engine
        self._block_index = block_index
        self.superstep = 0

    def send(self, target: Hashable, message: Any) -> None:
        """Send ``message`` to the block owning ``target``; delivered
        next superstep, tagged with the destination vertex."""
        self._engine._enqueue(self._block_index, target, message)

    def charge(self, ops: float) -> None:
        """Charge extra local work to this block."""
        self._engine._charge(self._block_index, ops)

    def vote_to_halt(self) -> None:
        """This block is done unless a message wakes it."""
        self._engine._halt(self._block_index)


class BlockProgram(ABC):
    """A per-block computation, run once per superstep per awake
    block.  ``messages`` is a list of ``(target_vertex, payload)``
    pairs addressed to this block's vertices."""

    name: str = "block-program"

    @abstractmethod
    def compute(
        self,
        block: BlockView,
        messages: List,
        ctx: BlockContext,
    ) -> None:
        """One superstep of work for one block."""


@dataclass
class BlockResult:
    """Per-vertex values plus the usual run statistics."""

    values: Dict[Hashable, Any]
    stats: RunStats

    @property
    def num_supersteps(self) -> int:
        return self.stats.num_supersteps


class BlockEngine:
    """Runs a :class:`BlockProgram` over a partitioned graph."""

    def __init__(
        self,
        graph: Graph,
        program: BlockProgram,
        num_blocks: int = 4,
        partitioner=None,
        cost_model: Optional[BSPCostModel] = None,
        max_supersteps: int = 10_000,
    ):
        self._graph = graph
        self._program = program
        self._num_blocks = num_blocks
        self._cost_model = cost_model or BSPCostModel()
        self._max_supersteps = max_supersteps
        partitioner = partitioner or BfsGrowPartitioner(
            graph, num_blocks
        )
        self._owner: Dict[Hashable, int] = {
            v: partitioner(v) % num_blocks for v in graph.vertices()
        }
        self._workers = [Worker(i) for i in range(num_blocks)]
        self._blocks: List[BlockView] = []
        for index in range(num_blocks):
            owned = {
                v for v, o in self._owner.items() if o == index
            }
            boundary: Dict[Hashable, List[Hashable]] = {}
            for v in owned:
                external = [
                    u
                    for u in set(graph.neighbors(v))
                    | set(graph.in_neighbors(v))
                    if u not in owned
                ]
                if external:
                    boundary[v] = sorted(external, key=repr)
            self._blocks.append(
                BlockView(
                    index=index,
                    vertices=owned,
                    subgraph=graph.subgraph(owned),
                    boundary=boundary,
                    values={v: None for v in owned},
                )
            )
        self._inbox: List[List] = [[] for _ in range(num_blocks)]
        self._outbox: List[List] = [[] for _ in range(num_blocks)]
        self._halted = [False] * num_blocks

    # -- services used by BlockContext ---------------------------------

    def _enqueue(self, src_block: int, target: Hashable, message: Any):
        dst_block = self._owner.get(target)
        if dst_block is None:
            raise MessageToUnknownVertexError(target)
        self._outbox[dst_block].append((target, message))
        self._workers[src_block].sent_logical += 1
        self._workers[dst_block].received_logical += 1
        if src_block != dst_block:
            self._workers[src_block].sent_network += 1
            self._workers[dst_block].received_network += 1
            self._workers[src_block].sent_remote += 1

    def _charge(self, block: int, ops: float) -> None:
        self._workers[block].work += ops

    def _halt(self, block: int) -> None:
        self._halted[block] = True

    # -- main loop -------------------------------------------------------

    def run(self) -> BlockResult:
        stats = RunStats(
            num_workers=self._num_blocks,
            cost_model=self._cost_model,
        )
        contexts = [
            BlockContext(self, i) for i in range(self._num_blocks)
        ]
        for superstep in range(self._max_supersteps):
            for w in self._workers:
                w.reset_counters()
            self._outbox = [[] for _ in range(self._num_blocks)]
            active = 0
            for index, block in enumerate(self._blocks):
                messages = self._inbox[index]
                if messages:
                    self._halted[index] = False
                if self._halted[index]:
                    continue
                active += 1
                ctx = contexts[index]
                ctx.superstep = superstep
                self._workers[index].work += 1 + len(messages)
                self._program.compute(block, messages, ctx)
            ws = self._workers
            stats.supersteps.append(
                SuperstepStats(
                    superstep=superstep,
                    work=[w.work for w in ws],
                    sent_logical=[w.sent_logical for w in ws],
                    received_logical=[
                        w.received_logical for w in ws
                    ],
                    sent_network=[w.sent_network for w in ws],
                    received_network=[
                        w.received_network for w in ws
                    ],
                    active_vertices=active,
                    sent_remote=[w.sent_remote for w in ws],
                )
            )
            self._inbox = self._outbox
            if all(self._halted) and not any(
                self._inbox[i] for i in range(self._num_blocks)
            ):
                break
        values: Dict[Hashable, Any] = {}
        for block in self._blocks:
            values.update(block.values)
        return BlockResult(values=values, stats=stats)


def run_blocks(
    graph: Graph, program: BlockProgram, **engine_kwargs
) -> BlockResult:
    """Convenience wrapper mirroring the other engines."""
    return BlockEngine(graph, program, **engine_kwargs).run()
