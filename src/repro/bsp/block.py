"""A subgraph-centric ("think like a graph") engine — the
Giraph++/NScale paradigm the paper's §1 lists and §3.8 prescribes for
neighborhood analytics.

Vertices are grouped into *blocks* (one per worker partition); a
superstep runs one ``compute`` per block, which may do arbitrary
sequential work over its whole local subgraph and message any vertex
in the graph (delivery routes to the owning block).  Internal
traffic — vertex-to-vertex within a block — costs nothing on the
network; only cross-block messages are charged, which is exactly the
advantage §3.8's triangle/LCC discussion appeals to.

The cost accounting reuses :class:`~repro.metrics.stats.RunStats`:
per-block local work, logical/remote messages, and the BSP superstep
charge ``max(w, g·h, L)``.

Hosted on the shared runtime (``docs/architecture.md``): the
superstep loop, checkpoint schedule, crash supervision, trace
lifecycle events, and injected network faults all come from
:class:`~repro.bsp.loop.SuperstepLoop` /
:class:`~repro.bsp.state.SnapshotRecovery`, exactly as for the GAS
engine, so ``trace=`` / ``fault_plan=`` / ``checkpoint_interval=``
behave identically across engines.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.bsp.checkpoint import CheckpointStore, cow_copy
from repro.bsp.faults import (
    FaultInjector,
    FaultPlan,
    inject_network_faults,
)
from repro.bsp.loop import (
    CheckpointPolicy,
    SuperstepLoop,
    emit_superstep_commit,
    emit_superstep_start,
)
from repro.bsp.state import SnapshotRecovery
from repro.bsp.worker import Worker, superstep_profile
from repro.errors import MessageToUnknownVertexError
from repro.graph.graph import Graph
from repro.graph.partition import (
    BfsGrowPartitioner,
    build_owner_map,
    canonical_sort_key,
)
from repro.metrics.cost_model import BSPCostModel
from repro.metrics.stats import RunStats
from repro.trace.recorder import TraceRecorder, get_default_trace


@dataclass
class BlockView:
    """What a block program sees: its slice of the graph.

    Attributes
    ----------
    index:
        The block (worker) index.
    vertices:
        The vertex ids owned by this block.
    subgraph:
        The induced subgraph on the owned vertices.
    boundary:
        ``{internal vertex: [external neighbors]}`` for every owned
        vertex with at least one cross-block edge.
    values:
        Shared per-vertex value store for the owned vertices
        (mutating it is the block's way of producing output).
    """

    index: int
    vertices: Set[Hashable]
    subgraph: Graph
    boundary: Dict[Hashable, List[Hashable]]
    values: Dict[Hashable, Any] = field(default_factory=dict)


class BlockContext:
    """Messaging and accounting surface for block programs."""

    def __init__(self, engine, block_index: int):
        self._engine = engine
        self._block_index = block_index
        self.superstep = 0

    def send(self, target: Hashable, message: Any) -> None:
        """Send ``message`` to the block owning ``target``; delivered
        next superstep, tagged with the destination vertex."""
        self._engine._enqueue(self._block_index, target, message)

    def charge(self, ops: float) -> None:
        """Charge extra local work to this block."""
        self._engine._charge(self._block_index, ops)

    def vote_to_halt(self) -> None:
        """This block is done unless a message wakes it."""
        self._engine._halt(self._block_index)


class BlockProgram(ABC):
    """A per-block computation, run once per superstep per awake
    block.  ``messages`` is a list of ``(target_vertex, payload)``
    pairs addressed to this block's vertices."""

    name: str = "block-program"

    @abstractmethod
    def compute(
        self,
        block: BlockView,
        messages: List,
        ctx: BlockContext,
    ) -> None:
        """One superstep of work for one block."""


@dataclass
class BlockResult:
    """Per-vertex values plus the usual run statistics."""

    values: Dict[Hashable, Any]
    stats: RunStats
    #: False when the run stopped at ``max_supersteps`` without
    #: quiescing (soft budget, not an error).
    converged: bool = True

    @property
    def num_supersteps(self) -> int:
        return self.stats.num_supersteps


class BlockEngine(SnapshotRecovery):
    """Runs a :class:`BlockProgram` over a partitioned graph.

    Accepts the shared fault-tolerance surface
    (``checkpoint_interval`` / ``fault_plan`` /
    ``max_recovery_attempts`` / ``trace``) with the same semantics as
    :class:`~repro.bsp.engine.PregelEngine`.
    """

    backend_name = "block"

    def __init__(
        self,
        graph: Graph,
        program: BlockProgram,
        num_blocks: int = 4,
        partitioner=None,
        cost_model: Optional[BSPCostModel] = None,
        max_supersteps: int = 10_000,
        checkpoint_interval: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_recovery_attempts: int = 3,
        trace: Optional[TraceRecorder] = None,
    ):
        self._graph = graph
        self._program = program
        self._num_blocks = num_blocks
        self._cost_model = cost_model or BSPCostModel()
        self._max_supersteps = max_supersteps
        self._trace = trace if trace is not None else get_default_trace()
        partitioner = partitioner or BfsGrowPartitioner(
            graph, num_blocks
        )
        self._owner: Dict[Hashable, int] = build_owner_map(
            graph.vertices(), partitioner, num_blocks
        )
        self._workers = [Worker(i) for i in range(num_blocks)]
        self._blocks: List[BlockView] = []
        for index in range(num_blocks):
            owned = {
                v for v, o in self._owner.items() if o == index
            }
            boundary: Dict[Hashable, List[Hashable]] = {}
            for v in owned:
                external = [
                    u
                    for u in set(graph.neighbors(v))
                    | set(graph.in_neighbors(v))
                    if u not in owned
                ]
                if external:
                    # Canonical type-tagged ordering (the same total
                    # order stable_hash canonicalizes by), so mixed-
                    # type boundaries sort by value rather than by
                    # the accident of repr strings.
                    boundary[v] = sorted(
                        external, key=canonical_sort_key
                    )
            self._blocks.append(
                BlockView(
                    index=index,
                    vertices=owned,
                    subgraph=graph.subgraph(owned),
                    boundary=boundary,
                    values={v: None for v in owned},
                )
            )
        self._inbox: List[List] = [[] for _ in range(num_blocks)]
        self._outbox: List[List] = [[] for _ in range(num_blocks)]
        self._halted = [False] * num_blocks
        self._contexts = [
            BlockContext(self, i) for i in range(num_blocks)
        ]

        # The shared supervision stack (loop / policy / injector /
        # snapshot store — see docs/architecture.md).
        self._injector = (
            FaultInjector(fault_plan, num_blocks)
            if fault_plan is not None
            else None
        )
        self._ckpt_store = CheckpointStore()
        self._ckpt_costs: Dict[int, float] = {}
        self._exec_counts: Dict[int, int] = {}
        self._run_stats: Optional[RunStats] = None
        self._policy = CheckpointPolicy(
            checkpoint_interval, fault_plan, self._ckpt_store
        )
        self._loop = SuperstepLoop(
            max_supersteps=max_supersteps,
            program_name=getattr(program, "name", "block-program"),
            num_workers=num_blocks,
            cost_model=self._cost_model,
            injector=self._injector,
            policy=self._policy,
            trace=self._trace,
            max_recovery_attempts=max_recovery_attempts,
            on_limit="stop",
        )

    # -- services used by BlockContext ---------------------------------

    def _enqueue(self, src_block: int, target: Hashable, message: Any):
        dst_block = self._owner.get(target)
        if dst_block is None:
            raise MessageToUnknownVertexError(target)
        self._outbox[dst_block].append((target, message))
        self._workers[src_block].sent_logical += 1
        self._workers[dst_block].received_logical += 1
        if src_block != dst_block:
            self._workers[src_block].sent_network += 1
            self._workers[dst_block].received_network += 1
            self._workers[src_block].sent_remote += 1

    def _charge(self, block: int, ops: float) -> None:
        self._workers[block].work += ops

    def _halt(self, block: int) -> None:
        self._halted[block] = True

    # -- SnapshotRecovery payload hooks -----------------------------

    def _snapshot_payload(self) -> Dict[str, Any]:
        return {
            "values": [
                {v: cow_copy(val) for v, val in b.values.items()}
                for b in self._blocks
            ],
            "halted": list(self._halted),
            "inbox": [
                [cow_copy(m) for m in box] for box in self._inbox
            ],
        }

    def _restore_payload(self, payload: Dict[str, Any]) -> None:
        for block, vals in zip(self._blocks, payload["values"]):
            block.values = {
                v: cow_copy(val) for v, val in vals.items()
            }
        self._halted = list(payload["halted"])
        self._inbox = [
            [cow_copy(m) for m in box] for box in payload["inbox"]
        ]

    def _restored_count(self) -> int:
        return len(self._owner)

    # -- the hosted superstep ---------------------------------------

    def run(self) -> BlockResult:
        stats = RunStats(
            num_workers=self._num_blocks,
            cost_model=self._cost_model,
        )
        self._run_stats = stats
        converged = self._loop.run(self, stats)
        values: Dict[Hashable, Any] = {}
        for block in self._blocks:
            values.update(block.values)
        return BlockResult(
            values=values, stats=stats, converged=converged
        )

    def _execute_superstep(
        self, superstep: int, stats: RunStats
    ) -> bool:
        self._exec_counts[superstep] = (
            self._exec_counts.get(superstep, 0) + 1
        )
        trace = self._trace
        if trace is not None:
            emit_superstep_start(
                trace,
                superstep,
                self._exec_counts[superstep],
                "block",
                self.backend_name,
            )
        for w in self._workers:
            w.reset_counters()
        self._outbox = [[] for _ in range(self._num_blocks)]
        active = 0
        for index, block in enumerate(self._blocks):
            messages = self._inbox[index]
            if messages:
                self._halted[index] = False
            if self._halted[index]:
                continue
            seg_start = time.perf_counter()
            active += 1
            ctx = self._contexts[index]
            ctx.superstep = superstep
            self._workers[index].work += 1 + len(messages)
            self._program.compute(block, messages, ctx)
            self._workers[index].wall_seconds = (
                time.perf_counter() - seg_start
            )
        entry = superstep_profile(
            self._workers,
            superstep,
            active,
            checkpoint_cost=self._ckpt_costs.get(superstep, 0.0),
            executions=self._exec_counts.get(superstep, 1),
        )
        # Injected message faults strike the superstep's cross-block
        # traffic as one batch; reliable delivery masks them.
        inject_network_faults(
            self._injector,
            sum(entry.received_network),
            stats,
            trace,
            superstep,
        )
        stats.supersteps.append(entry)
        delivered = sum(len(box) for box in self._outbox)
        if trace is not None:
            emit_superstep_commit(
                trace,
                self._workers,
                entry,
                self._cost_model,
                delivered,
            )
        self._inbox = self._outbox
        return all(self._halted) and delivered == 0


def run_blocks(
    graph: Graph, program: BlockProgram, **engine_kwargs
) -> BlockResult:
    """Convenience wrapper mirroring the other engines."""
    return BlockEngine(graph, program, **engine_kwargs).run()
