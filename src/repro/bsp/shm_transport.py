"""Shared-memory columnar transport for the process-parallel backend.

The pickle transport ships every superstep's inbound slots and effect
sets as fully pickled Python structures through the coordinator/rank
pipes — for a fixed-width numeric workload like PageRank that is tens
of kilobytes per rank per superstep of redundant framing around what
is really two flat ``float64`` arrays.  This module provides the
columnar alternative (``docs/parallel_backend.md``, transport tiers):

* one :class:`multiprocessing.shared_memory.SharedMemory` segment per
  pool, created by the coordinator at pool start and mapped once by
  every rank, laid out as fixed-offset per-rank **lanes** over the
  dense slot index — inbound slot indices/lengths/messages going down,
  executed indices, value/halt columns, touched-slot indices, combined
  payloads, BPPA tracker columns and aggregator contributions coming
  up;
* a lane codec that moves homogeneous ``float``/``int`` columns as raw
  ``float64``/``int64`` bytes (``array`` + ``memoryview`` — C-speed
  bulk copies, and bit-exact round-trips: CPython floats *are*
  float64, and ints within int64 range convert losslessly);
* per-lane degradation: any column the codec cannot take — mixed or
  non-numeric types, out-of-range ints, capacity overflow — rides the
  pipe pickled in the reply's ``spill`` dict instead, so the transport
  never constrains what a program may compute with.  The pipe message
  itself shrinks to a small header of scalars and lane descriptors.

The transport changes only the wire format.  Ranks still compute the
exact effect sets the pickle transport ships, and the coordinator
decodes lanes back into the *same Python structures* before the
unchanged rank-ordered merge — so byte-identity with serial execution
is preserved structurally, not re-proven per workload (the
differential-fuzz suite pins it anyway).

Segment lifecycle and leak handling
-----------------------------------
Segment names are ``repro_shm_<pid-hex>_<uid-hex>`` (short enough for
every platform's name limit) so a leaked segment is attributable to
its creating coordinator.  Unlink routes, in order of preference:

* the owning engine destroys the segment on every pool teardown
  (normal stop, rank-failure restart, run end, ``atexit`` pool sweep);
* a module ``atexit`` hook unlinks anything still registered here;
* each rank's orphan watchdog unlinks the segment (idempotently —
  double unlink is harmless) before ``os._exit`` when the coordinator
  vanishes, covering a SIGKILLed coordinator whose own hooks never
  ran;
* :func:`sweep_leaked_segments` scans ``/dev/shm`` for prefix-matching
  names whose embedded creator pid is dead — a belt-and-braces sweep
  callable from fresh processes (the chaos CLI runs it on resume);
* CPython's ``resource_tracker`` remains the final backstop: the
  coordinator's registration survives in the shared tracker process
  and unlinks the name when every registered process has died.

Ranks attach with resource-tracker registration *suppressed* (3.x
registers on attach, not only on create; under the fork start method
all processes share one tracker whose registry is a plain name set,
so a rank's attach+unregister would erase the coordinator's
registration and later unregisters would spam ``KeyError`` tracebacks
from the tracker process).  Suppressing the rank-side registration
keeps the tracker's books at exactly one registration — the
coordinator's — which its own ``unlink()`` retires cleanly.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import secrets
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Name prefix of every segment this module creates; the sweep and the
#: chaos tests key on it.
SEG_PREFIX = "repro_shm_"

#: Lane type codes: ``array`` typecodes for the two fixed-width
#: numeric column types the codec moves as raw bytes.
LANE_FLOAT = "d"  # IEEE-754 float64 — CPython's float, bit-exact
LANE_INT = "q"  # int64 — exact for every int in range

_SLOT = 8  # bytes per lane slot (both typecodes are 8-wide)


# ---------------------------------------------------------------------
# Lane codec
# ---------------------------------------------------------------------


def encode_lane(values: Sequence[Any]) -> Optional[Tuple[str, array]]:
    """Encode a column as a typed array, or ``None`` if it does not
    conform (the caller then spills the column over the pipe).

    Conforming means *exactly* ``float`` or *exactly* ``int`` (within
    int64 range) throughout — checked with C-speed ``type`` mapping,
    never coercion: ``array('d', [3])`` would silently turn the int 3
    into 3.0 and break byte-identity, and ``bool`` is excluded because
    ``type(True)`` is not ``int`` under this check (True pickles
    differently from 1).  Empty columns encode as an empty float lane.
    """
    kinds = set(map(type, values))
    if kinds == {float}:
        return LANE_FLOAT, array(LANE_FLOAT, values)
    if kinds == {int}:
        try:
            return LANE_INT, array(LANE_INT, values)
        except OverflowError:
            return None
    if not kinds:
        return LANE_FLOAT, array(LANE_FLOAT)
    return None


# ---------------------------------------------------------------------
# Segment layout and lifecycle
# ---------------------------------------------------------------------

#: Names created by this process and not yet unlinked; the module
#: atexit hook sweeps whatever an interrupted run leaves here.
_LIVE_SEGMENT_NAMES: set = set()
_ATEXIT_REGISTERED = False


def _unlink_registered_segments() -> None:
    for name in list(_LIVE_SEGMENT_NAMES):
        _unlink_by_name(name)


@contextlib.contextmanager
def _suppressed_tracking() -> Iterator[None]:
    """No-op the resource tracker's register/unregister for the
    duration: used when attaching from a rank (the creator already
    registered; see the module docstring) and when sweeping names
    this process never owned (the dead creator's tracker is gone, and
    an unregister for an unknown name makes a fresh tracker print a
    ``KeyError`` traceback)."""
    orig_register = resource_tracker.register
    orig_unregister = resource_tracker.unregister
    resource_tracker.register = lambda *a, **k: None
    resource_tracker.unregister = lambda *a, **k: None
    try:
        yield
    finally:
        resource_tracker.register = orig_register
        resource_tracker.unregister = orig_unregister


def _unlink_by_name(name: str) -> bool:
    """Best-effort unlink of a segment by name; True if it existed."""
    _LIVE_SEGMENT_NAMES.discard(name)
    try:
        with _suppressed_tracking():
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
    except FileNotFoundError:
        return False
    except OSError:
        return False
    return True


def _segment_name() -> str:
    # pid identifies the creating coordinator (the sweep checks its
    # liveness); the random suffix guards against pid reuse within
    # one boot and against two pools in one process.
    return f"{SEG_PREFIX}{os.getpid():x}_{secrets.token_hex(4)}"


class ColumnarSegment:
    """One pool's shared-memory segment: fixed per-rank lane offsets
    over the dense slot index, plus the read/write primitives the
    codec uses.

    The layout is a pure function of ``(num_slots, ranges, combining,
    tracking)``, so the coordinator ships only those plus the segment
    *name* and every rank reconstructs identical offsets on attach.
    Lane capacities are sized so that every conforming workload fits
    (inbound and combined payloads are bounded by the slot count when
    a combiner is active); a non-combining superstep that overflows
    its data lane degrades to the pickle spill for that rank, never
    truncates.
    """

    #: Lane names in layout order.  ``P`` is the rank's partition
    #: size, ``n`` the total slot count, ``W`` the rank count.
    def __init__(
        self,
        num_slots: int,
        ranges: Sequence[Tuple[int, int]],
        combining: bool,
        tracking: bool,
        name: Optional[str] = None,
    ):
        self.num_slots = int(num_slots)
        self.ranges = [tuple(r) for r in ranges]
        self.combining = bool(combining)
        self.tracking = bool(tracking)
        n = self.num_slots
        num_ranks = len(self.ranges)
        self._offsets: Dict[Tuple[int, str], Tuple[int, int]] = {}
        offset = 0

        def add(rank: int, lane: str, cap: int) -> None:
            nonlocal offset
            self._offsets[(rank, lane)] = (offset, cap)
            offset += cap * _SLOT

        for rank, (start, stop) in enumerate(self.ranges):
            part = stop - start
            add(rank, "down_idx", part)
            add(rank, "down_len", part)
            add(rank, "down_data", max(part * num_ranks, 1024))
            add(rank, "up_executed", part)
            add(rank, "up_values", part)
            add(rank, "up_halted", part)
            add(rank, "up_touched", n)
            if self.combining:
                add(rank, "up_counts", n)
            else:
                add(rank, "up_lens", n)
            add(rank, "up_data", max(2 * n, 1024))
            if self.tracking:
                add(rank, "up_tr_sent", part)
                add(rank, "up_tr_recv", part)
                add(rank, "up_tr_ops", part)
                add(rank, "up_tr_size", part)
            agg_cap = max(2 * part, 256)
            add(rank, "up_agg_name", agg_cap)
            add(rank, "up_agg_val", agg_cap)
        self.size = max(offset, _SLOT)
        self._closed = False
        if name is None:
            global _ATEXIT_REGISTERED
            self.name = _segment_name()
            self.owner = True
            self._shm = shared_memory.SharedMemory(
                name=self.name, create=True, size=self.size
            )
            _LIVE_SEGMENT_NAMES.add(self.name)
            if not _ATEXIT_REGISTERED:
                atexit.register(_unlink_registered_segments)
                _ATEXIT_REGISTERED = True
        else:
            self.name = name
            self.owner = False
            # The creator already registered the segment with the
            # resource tracker; a second (rank-side) registration
            # must be suppressed, not undone — see module docstring.
            with _suppressed_tracking():
                self._shm = shared_memory.SharedMemory(name=name)

    # -- shipping the layout to ranks -------------------------------

    @property
    def descriptor(self) -> Tuple:
        """Everything a rank needs to attach with identical offsets."""
        return (
            self.name,
            self.num_slots,
            self.ranges,
            self.combining,
            self.tracking,
        )

    @classmethod
    def attach(cls, descriptor: Tuple) -> "ColumnarSegment":
        name, num_slots, ranges, combining, tracking = descriptor
        return cls(num_slots, ranges, combining, tracking, name=name)

    # -- lane primitives --------------------------------------------

    def cap(self, rank: int, lane: str) -> int:
        return self._offsets[(rank, lane)][1]

    def write(self, rank: int, lane: str, column: array) -> int:
        """Bulk-copy ``column`` into the lane; returns bytes moved."""
        offset, cap_slots = self._offsets[(rank, lane)]
        data = column.tobytes()
        if len(data) > cap_slots * _SLOT:
            raise ValueError(
                f"lane {lane} overflow: {len(column)} > {cap_slots}"
            )
        self._shm.buf[offset : offset + len(data)] = data
        return len(data)

    def read(
        self, rank: int, lane: str, typecode: str, count: int
    ) -> list:
        offset, _cap = self._offsets[(rank, lane)]
        column = array(typecode)
        column.frombytes(
            self._shm.buf[offset : offset + count * _SLOT]
        )
        return column.tolist()

    # -- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Remove the backing object (idempotent; attachment views of
        other processes survive until they close)."""
        _LIVE_SEGMENT_NAMES.discard(self.name)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass

    def destroy(self) -> None:
        """Close and unlink — every coordinator teardown route, and
        the rank orphan watchdog, end up here."""
        self.close()
        self.unlink()


def sweep_leaked_segments() -> List[str]:
    """Unlink prefix-matching ``/dev/shm`` segments whose creating
    process is dead; returns the names removed.

    A no-op on platforms without ``/dev/shm`` (the resource tracker
    covers them).  A live or unparseable pid means the segment is
    left alone — pid-reuse can only cause a leak to *survive* until
    the tracker's backstop, never remove a live pool's segment.
    """
    shm_dir = "/dev/shm"
    removed: List[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return removed
    for name in names:
        if not name.startswith(SEG_PREFIX):
            continue
        tail = name[len(SEG_PREFIX) :]
        pid_hex = tail.split("_", 1)[0]
        try:
            pid = int(pid_hex, 16)
        except ValueError:
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # creator alive: not leaked
        except ProcessLookupError:
            pass
        except PermissionError:
            continue  # alive, someone else's
        except OSError:
            continue
        if _unlink_by_name(name):
            removed.append(name)
    return removed


# ---------------------------------------------------------------------
# Inbound (coordinator -> rank)
# ---------------------------------------------------------------------


def encode_inbound(
    seg: ColumnarSegment,
    rank: int,
    pairs: List[Tuple[int, List[Any]]],
) -> Optional[Tuple]:
    """Write one rank's inbound slot batch ``[(dense idx, messages)]``
    into its down lanes; returns the pipe descriptor, or ``None`` when
    the batch does not conform (caller ships it pickled instead)."""
    if len(pairs) > seg.cap(rank, "down_idx"):
        return None
    flat: List[Any] = []
    for _idx, msgs in pairs:
        flat.extend(msgs)
    encoded = encode_lane(flat)
    if encoded is None:
        return None
    code, data = encoded
    if len(data) > seg.cap(rank, "down_data"):
        return None
    seg.write(rank, "down_idx", array(LANE_INT, (p[0] for p in pairs)))
    seg.write(
        rank, "down_len", array(LANE_INT, (len(p[1]) for p in pairs))
    )
    seg.write(rank, "down_data", data)
    return ("shm", len(pairs), code, len(data))


def decode_inbound(
    seg: ColumnarSegment, rank: int, descriptor: Tuple
) -> List[Tuple[int, List[Any]]]:
    """Rank-side inverse of :func:`encode_inbound`: rebuild the exact
    ``[(idx, messages)]`` batch the pickle transport would have
    shipped."""
    _tag, count, code, data_len = descriptor
    idxs = seg.read(rank, "down_idx", LANE_INT, count)
    lens = seg.read(rank, "down_len", LANE_INT, count)
    flat = seg.read(rank, "down_data", code, data_len)
    pairs: List[Tuple[int, List[Any]]] = []
    pos = 0
    for i in range(count):
        end = pos + lens[i]
        pairs.append((idxs[i], flat[pos:end]))
        pos = end
    return pairs


# ---------------------------------------------------------------------
# Reply (rank -> coordinator)
# ---------------------------------------------------------------------


def encode_reply(
    seg: ColumnarSegment,
    rank: int,
    resp: Dict[str, Any],
    agg_index: Dict[str, int],
) -> Dict[str, Any]:
    """Encode a rank's effect set into its up lanes; returns the small
    pipe header (scalars, lane descriptors, and a ``spill`` dict
    holding any column that did not conform).

    Never fails: a lane group the codec rejects rides the pipe in
    ``spill`` exactly as the pickle transport would ship it, so the
    transport tier degrades per column, not per run.
    """
    spill: Dict[str, Any] = {}
    shm_bytes = 0
    values = resp["values"]
    executed = array(LANE_INT, (idx for idx, _v in values))
    shm_bytes += seg.write(rank, "up_executed", executed)
    header: Dict[str, Any] = {
        "active": resp["active"],
        "work": resp["work"],
        "sent_logical": resp["sent_logical"],
        "sent_remote": resp["sent_remote"],
        "pending": resp["pending"],
        "drew": resp["drew"],
        "kernel_tier": resp["kernel_tier"],
        "n_exec": len(values),
    }

    encoded = encode_lane([v for _idx, v in values])
    if encoded is None:
        header["values"] = None
        spill["values"] = values
    else:
        code, column = encoded
        shm_bytes += seg.write(rank, "up_values", column)
        header["values"] = code

    halted = resp["halted"]
    shm_bytes += seg.write(rank, "up_halted", array(LANE_INT, halted))
    header["n_halt"] = len(halted)

    touched = resp["touched"]
    payloads = resp["payloads"]
    counts = resp["counts"]
    msgs_desc: Optional[Tuple] = None
    if len(touched) <= seg.cap(rank, "up_touched"):
        if counts is not None:
            encoded = encode_lane(payloads)
            if encoded is not None:
                code, column = encoded
                shm_bytes += seg.write(
                    rank, "up_touched", array(LANE_INT, touched)
                )
                shm_bytes += seg.write(
                    rank, "up_counts", array(LANE_INT, counts)
                )
                shm_bytes += seg.write(rank, "up_data", column)
                msgs_desc = ("c", len(touched), code)
        else:
            flat: List[Any] = []
            for bucket in payloads:
                flat.extend(bucket)
            encoded = encode_lane(flat)
            if (
                encoded is not None
                and len(flat) <= seg.cap(rank, "up_data")
            ):
                code, column = encoded
                shm_bytes += seg.write(
                    rank, "up_touched", array(LANE_INT, touched)
                )
                shm_bytes += seg.write(
                    rank,
                    "up_lens",
                    array(LANE_INT, (len(b) for b in payloads)),
                )
                shm_bytes += seg.write(rank, "up_data", column)
                msgs_desc = ("p", len(touched), code, len(flat))
    header["msgs"] = msgs_desc
    if msgs_desc is None:
        spill["msgs"] = (touched, payloads, counts)

    tracker = resp["tracker"]
    if tracker is None:
        header["tracker"] = "none"
    elif not tracker:
        header["tracker"] = "empty"
    elif not seg.tracking:  # pragma: no cover - layout always matches
        header["tracker"] = None
        spill["tracker"] = tracker
    else:
        ops_enc = encode_lane([row[3] for row in tracker])
        size_enc = encode_lane([row[4] for row in tracker])
        if ops_enc is None or size_enc is None:
            header["tracker"] = None
            spill["tracker"] = tracker
        else:
            # vids are recovered coordinator-side from the executed
            # lane (tracker rows are per executed vertex, in order).
            shm_bytes += seg.write(
                rank,
                "up_tr_sent",
                array(LANE_INT, (row[1] for row in tracker)),
            )
            shm_bytes += seg.write(
                rank,
                "up_tr_recv",
                array(LANE_INT, (row[2] for row in tracker)),
            )
            shm_bytes += seg.write(rank, "up_tr_ops", ops_enc[1])
            shm_bytes += seg.write(rank, "up_tr_size", size_enc[1])
            header["tracker"] = (ops_enc[0], size_enc[0])

    aggs = resp["aggs"]
    if not aggs:
        header["aggs"] = "empty"
    elif len(aggs) > seg.cap(rank, "up_agg_name"):
        header["aggs"] = None
        spill["aggs"] = aggs
    else:
        val_enc = encode_lane([value for _name, value in aggs])
        if val_enc is None:
            header["aggs"] = None
            spill["aggs"] = aggs
        else:
            shm_bytes += seg.write(
                rank,
                "up_agg_name",
                array(
                    LANE_INT,
                    (agg_index[name] for name, _value in aggs),
                ),
            )
            shm_bytes += seg.write(rank, "up_agg_val", val_enc[1])
            header["aggs"] = (len(aggs), val_enc[0])

    mutations = resp["mutations"]
    if mutations is not None:
        spill["mutations"] = mutations
    header["spill"] = spill
    header["shm_bytes"] = shm_bytes
    return header


def decode_reply(
    seg: ColumnarSegment,
    rank: int,
    header: Dict[str, Any],
    id_of: Sequence,
    agg_names: Sequence[str],
) -> Tuple[Dict[str, Any], bool]:
    """Coordinator-side inverse of :func:`encode_reply`: rebuild the
    exact effect-set dict the pickle transport ships, so the merge
    code downstream cannot tell the transports apart.  Returns
    ``(effect set, fully_columnar)``."""
    spill = header["spill"]
    fully_columnar = not spill
    n_exec = header["n_exec"]
    executed = seg.read(rank, "up_executed", LANE_INT, n_exec)

    if header["values"] is None:
        values = spill["values"]
    else:
        column = seg.read(rank, "up_values", header["values"], n_exec)
        values = list(zip(executed, column))

    halted = seg.read(rank, "up_halted", LANE_INT, header["n_halt"])

    msgs_desc = header["msgs"]
    if msgs_desc is None:
        touched, payloads, counts = spill["msgs"]
    elif msgs_desc[0] == "c":
        _tag, k, code = msgs_desc
        touched = seg.read(rank, "up_touched", LANE_INT, k)
        counts = seg.read(rank, "up_counts", LANE_INT, k)
        payloads = seg.read(rank, "up_data", code, k)
    else:
        _tag, k, code, data_len = msgs_desc
        touched = seg.read(rank, "up_touched", LANE_INT, k)
        lens = seg.read(rank, "up_lens", LANE_INT, k)
        flat = seg.read(rank, "up_data", code, data_len)
        payloads = []
        pos = 0
        for i in range(k):
            end = pos + lens[i]
            payloads.append(flat[pos:end])
            pos = end
        counts = None

    tr_desc = header["tracker"]
    if tr_desc == "none":
        tracker = None
    elif tr_desc == "empty":
        tracker = []
    elif tr_desc is None:
        tracker = spill["tracker"]
    else:
        ops_code, size_code = tr_desc
        sent = seg.read(rank, "up_tr_sent", LANE_INT, n_exec)
        recv = seg.read(rank, "up_tr_recv", LANE_INT, n_exec)
        ops = seg.read(rank, "up_tr_ops", ops_code, n_exec)
        sizes = seg.read(rank, "up_tr_size", size_code, n_exec)
        tracker = list(
            zip((id_of[idx] for idx in executed), sent, recv, ops, sizes)
        )

    agg_desc = header["aggs"]
    if agg_desc == "empty":
        aggs = []
    elif agg_desc is None:
        aggs = spill["aggs"]
    else:
        count, code = agg_desc
        name_idx = seg.read(rank, "up_agg_name", LANE_INT, count)
        agg_vals = seg.read(rank, "up_agg_val", code, count)
        aggs = list(
            zip((agg_names[i] for i in name_idx), agg_vals)
        )

    resp = {
        "active": header["active"],
        "work": header["work"],
        "sent_logical": header["sent_logical"],
        "sent_remote": header["sent_remote"],
        "pending": header["pending"],
        "values": values,
        "halted": halted,
        "touched": touched,
        "payloads": payloads,
        "counts": counts,
        "aggs": aggs,
        "tracker": tracker,
        "mutations": spill.get("mutations"),
        "drew": header["drew"],
        "kernel_tier": header.get("kernel_tier", "dense"),
        "seconds": header["seconds"],
        "shm_bytes": header["shm_bytes"],
    }
    return resp, fully_columnar
