"""Topology mutation requests, applied between supersteps.

Pregel lets a ``compute()`` call request graph mutations that take
effect before the next superstep (used here by the MIS coloring and
Boruvka MCST workloads).  Requests are collected during the superstep
and resolved by the engine with Pregel's partial ordering: removals
before additions, edge removals before vertex removals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Tuple


@dataclass
class MutationLog:
    """The mutation requests accumulated during one superstep."""

    remove_edges: List[Tuple[Hashable, Hashable]] = field(
        default_factory=list
    )
    remove_vertices: List[Hashable] = field(default_factory=list)
    add_vertices: List[Tuple[Hashable, Any]] = field(default_factory=list)
    add_edges: List[Tuple[Hashable, Hashable, float]] = field(
        default_factory=list
    )

    def is_empty(self) -> bool:
        return not (
            self.remove_edges
            or self.remove_vertices
            or self.add_vertices
            or self.add_edges
        )

    def clear(self) -> None:
        self.remove_edges.clear()
        self.remove_vertices.clear()
        self.add_vertices.clear()
        self.add_edges.clear()
