"""Simulated Pregel workers.

A worker owns a fixed subset of the vertices (decided by the
partitioner) and accumulates the per-superstep profile — local work,
messages sent and received — that feeds the BSP cost model.  The
simulation executes workers sequentially but the semantics are those of
parallel execution: all compute() calls in a superstep observe only
messages from the previous superstep, and mutations apply only at the
superstep boundary.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

from repro.metrics.stats import SuperstepStats


class Worker:
    """One simulated processor and its per-superstep counters."""

    __slots__ = (
        "index",
        "vertex_ids",
        "range_start",
        "range_stop",
        "work",
        "sent_logical",
        "received_logical",
        "sent_network",
        "received_network",
        "sent_remote",
        "wall_seconds",
        "barrier_seconds",
        "payload_bytes",
        "kernel_tier",
    )

    def __init__(self, index: int):
        self.index = index
        self.vertex_ids: List[Hashable] = []
        # Dense CSR range [range_start, range_stop) owned by this
        # worker under the engine's fast path; both 0 until a
        # DenseIndex is compiled (and stale after a topology mutation
        # disengages the fast path).
        self.range_start = 0
        self.range_stop = 0
        self.work = 0.0
        self.sent_logical = 0
        self.received_logical = 0
        self.sent_network = 0
        self.received_network = 0
        self.sent_remote = 0
        # Measured seconds for the current superstep: time spent in
        # this worker's compute pass, and time idled at the barrier
        # waiting for the slowest worker.  Real measurements, not
        # modeled quantities — they feed RunStats.wall, which is
        # excluded from the byte-identity contract.
        self.wall_seconds = 0.0
        self.barrier_seconds = 0.0
        # Serialized bytes this worker's share of the superstep moved
        # across the process boundary (parallel backend pipes); 0 on
        # in-process backends.  A measurement like the wall columns,
        # outside the byte-identity contract.
        self.payload_bytes = 0
        # Which compute kernel executed this worker's share of the
        # superstep ("reference" / "dense" / "vectorized").  Trace
        # observability only — like the wall columns, never part of
        # the byte-identity contract.
        self.kernel_tier = "reference"

    def reset_counters(self) -> None:
        """Zero the per-superstep profile."""
        self.work = 0.0
        self.sent_logical = 0
        self.received_logical = 0
        self.sent_network = 0
        self.received_network = 0
        self.sent_remote = 0
        self.wall_seconds = 0.0
        self.barrier_seconds = 0.0
        self.payload_bytes = 0
        self.kernel_tier = "reference"

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<Worker {self.index} vertices={len(self.vertex_ids)} "
            f"work={self.work}>"
        )


def superstep_profile(
    workers: Sequence[Worker],
    superstep: int,
    active: int,
    checkpoint_cost: float = 0.0,
    executions: int = 1,
) -> SuperstepStats:
    """Freeze the workers' per-superstep counters into one
    :class:`~repro.metrics.stats.SuperstepStats` entry.

    The single construction site shared by every engine (Pregel, GAS,
    block, async), so the per-worker column order and field mapping
    cannot drift between them.
    """
    return SuperstepStats(
        superstep=superstep,
        work=[w.work for w in workers],
        sent_logical=[w.sent_logical for w in workers],
        received_logical=[w.received_logical for w in workers],
        sent_network=[w.sent_network for w in workers],
        received_network=[w.received_network for w in workers],
        active_vertices=active,
        sent_remote=[w.sent_remote for w in workers],
        checkpoint_cost=checkpoint_cost,
        executions=executions,
    )
