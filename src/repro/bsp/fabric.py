"""The message fabric: routing, combining, ledger accounting, and
fault-injected delivery.

This layer owns every mailbox the Pregel engine has — the reference
dict path's ``inbox``/``outbox`` and the dense fast path's slot
arrays — plus the send/fanout entry points the compute kernels call
and the two delivery routines that move a superstep's traffic across
the barrier.  The engine composes exactly one fabric and forwards its
``_enqueue``/``_fanout`` attributes to the fabric's current bindings
(rebinding them together on every path switch, so
:class:`~repro.bsp.context.ComputeContext`'s cached references stay
hot and correct).

Two interchangeable layouts, byte-identical by construction
----------------------------------------------------------

* the **reference dict path** — hashable-keyed ``inbox``/``outbox``
  dicts, one ``(src_worker, message)`` tuple per logical message,
  combiner applied at delivery.  Always correct, survives topology
  mutations, supports confined recovery, and is the oracle the fast
  path is tested against;
* the **dense fast path** — vertex ids compiled to contiguous ints
  (:class:`~repro.graph.partition.DenseIndex`), slot mailboxes (flat
  lists indexed by dense id with per-superstep dirty lists, so
  clearing is O(active) not O(n)), and the combiner folded *at send
  time* into a per-``(destination, sending worker)`` slot.

Key properties that keep the fast path byte-identical:

* Workers execute sequentially, so global send order is "all of
  worker 0's sends, then worker 1's, …".  Each worker owns a
  persistent accumulator array indexed by dense destination (its
  ``(src_worker, destination)`` slots), and delivery scans the workers
  in index order per destination — which is exactly the
  per-destination grouping order the reference outbox produces at
  delivery time.
* ``out_dirty`` is rebuilt per superstep by stamping first touches per
  worker and deduplicating across workers in worker order; that
  equals the reference outbox's key insertion order, which fixes the
  fault-injection draw sequence and the inbox (and checkpoint)
  insertion order.
* The dense adjacency (``dense_out``/``remote_out``, compiled once at
  engage) replaces the per-message id hash for full-neighbor fanouts;
  the topology is frozen while the fast path is active, so the
  compiled neighbor indices cannot go stale.

With a combiner, a slot is a single combined message in
``accs[w][dst]`` plus its logical count in ``cnts[w][dst]``
(occupancy is ``cnt > 0``, so messages may be any value, including
None); without one it is a list of messages in send order (occupancy:
non-None).
"""

from __future__ import annotations

import operator
import os
import pickle
import shutil
import tempfile
from array import array
from collections import defaultdict
from typing import Any, Dict, Hashable, List, Optional

from repro.bsp.combiner import SumCombiner
from repro.bsp.faults import DeliveryFaults
from repro.bsp.shm_transport import encode_lane
from repro.errors import (
    MessageToUnknownVertexError,
    VertexNotFoundError,
)
from repro.graph.partition import build_dense_index
from repro.graph.snapshot import is_graph_snapshot
from repro.trace.events import FaultInjected


class MessageFabric:
    """One engine's mailboxes, send paths, and delivery routines.

    ``engine`` supplies the run-scoped collaborators the fabric reads
    at superstep boundaries (``_injector``, ``_run_stats``, ``_trace``,
    ``_confined_recovery``, ``_fast_enabled``); ``store`` supplies the
    vertex partition (``states``/``owner``/``workers``, mirrored here
    as direct attributes for the per-message hot paths, plus the
    confined-recovery message log).  The engine's ``_states``/
    ``_owner`` property setters refresh the mirrors whenever a
    checkpoint restore swaps the underlying dicts.
    """

    def __init__(
        self,
        engine,
        store,
        combiner,
        memory_budget: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ):
        self._engine = engine
        self._store = store
        self._combiner = combiner
        #: Soft cap, in encoded bytes, on one superstep's buffered
        #: message volume across the slot-mailbox accumulator lanes.
        #: ``None`` (the default) disables the spill tier entirely —
        #: no accounting, no encoding, byte-for-byte the historical
        #: behavior.
        self.memory_budget = memory_budget
        self._spill_dir = spill_dir
        self._spill_tmp: Optional[str] = None
        self._spilled: Dict[int, str] = {}
        self._spill_seq = 0
        self._resident_bytes = 0
        #: Observability counters (never part of RunStats: a budgeted
        #: run must stay byte-identical to an unbudgeted one).
        self.spilled_lanes = 0
        self.spilled_bytes = 0
        # Hot-path mirrors of the store's partition (see class doc).
        self.states = store.states
        self.owner = store.owner
        self.workers = store.workers
        #: True while a confined replay is re-executing compute calls
        #: (sends and aggregations are suppressed — their effects are
        #: already in the live state).
        self.replaying = False

        # Reference dict path (idle while the fast path is engaged).
        self.inbox: Dict[Hashable, List[Any]] = defaultdict(list)
        self.outbox: Dict[Hashable, List] = defaultdict(list)

        # Dense fast path (compiled by engage_fast_path).
        self.fast_active = False
        self.dense = None
        self.dense_states = None
        self.dense_out: Optional[List[Optional[List[int]]]] = None
        self.remote_out: Optional[List[int]] = None
        self.in_slots: Optional[List[Optional[List[Any]]]] = None
        self.in_dirty: List[int] = []
        self.out_dirty: List[int] = []
        self.out_pending = 0
        self.accs: Optional[List[List[Any]]] = None
        self.cnts: Optional[List[List[int]]] = None
        self.acc: Optional[List[Any]] = None
        self.cnt: Optional[List[int]] = None
        self.acc_touched: List[int] = []
        self.slot_seen: Optional[List[int]] = None
        self.stamp = 0
        self.combine = None
        # Per-vertex send context, bound by the dense compute kernel.
        self.cur_worker = None
        self.cur_src = 0
        self.cur_idx = 0

        self.enqueue = self.enqueue_reference
        self.fanout = self.fanout_reference

    # ------------------------------------------------------------------
    # Send paths: reference
    # ------------------------------------------------------------------

    def enqueue_reference(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        if target not in self.states:
            raise MessageToUnknownVertexError(target)
        if self.replaying:
            # Confined replay recomputes state only; every message the
            # original execution sent was already delivered (and
            # logged), so re-sends are suppressed.
            return
        src_worker = self.owner[source]
        dst_worker = self.owner[target]
        self.outbox[target].append((src_worker, message))
        self.workers[src_worker].sent_logical += 1
        if src_worker != dst_worker:
            self.workers[src_worker].sent_remote += 1

    def fanout_reference(
        self, source: Hashable, targets, message: Any
    ) -> int:
        enqueue = self.enqueue
        n = 0
        for target in targets:
            enqueue(source, target, message)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Send paths: dense slots, send-time combining
    # ------------------------------------------------------------------
    #
    # These run only from inside the dense compute kernel, which binds
    # cur_worker / cur_src / cur_idx per vertex and acc / cnt per
    # worker; confined recovery (the only producer of ``replaying``)
    # forces the reference path, so no replay guard is needed here.

    def enqueue_fast(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        dst = self.dense.idx_of.get(target)
        if dst is None:
            raise MessageToUnknownVertexError(target)
        bucket = self.acc[dst]
        if bucket is None:
            self.acc[dst] = [message]
            self.acc_touched.append(dst)
        else:
            bucket.append(message)
        self.out_pending += 1
        worker = self.cur_worker
        worker.sent_logical += 1
        if self.dense.owner_of[dst] != self.cur_src:
            worker.sent_remote += 1

    def enqueue_fast_combining(
        self, source: Hashable, target: Hashable, message: Any
    ) -> None:
        dst = self.dense.idx_of.get(target)
        if dst is None:
            raise MessageToUnknownVertexError(target)
        cnt = self.cnt
        c = cnt[dst]
        if c:
            self.acc[dst] = self.combine(self.acc[dst], message)
            cnt[dst] = c + 1
        else:
            self.acc[dst] = message
            cnt[dst] = 1
            self.acc_touched.append(dst)
        self.out_pending += 1
        worker = self.cur_worker
        worker.sent_logical += 1
        if self.dense.owner_of[dst] != self.cur_src:
            worker.sent_remote += 1

    def fanout_fast(self, source, targets, message) -> int:
        idx = self.cur_idx
        acc = self.acc
        touched = self.acc_touched
        worker = self.cur_worker
        nbrs = self.dense_out[idx]
        if (
            nbrs is not None
            and targets is self.dense_states[idx].out_edges
        ):
            # Full-neighbor fanout: use the precompiled dense
            # adjacency — no per-target hashing.
            for dst in nbrs:
                bucket = acc[dst]
                if bucket is None:
                    acc[dst] = [message]
                    touched.append(dst)
                else:
                    bucket.append(message)
            n = len(nbrs)
            worker.sent_logical += n
            worker.sent_remote += self.remote_out[idx]
            self.out_pending += n
            return n
        idx_get = self.dense.idx_of.get
        owner_of = self.dense.owner_of
        src = self.cur_src
        n = remote = 0
        try:
            for target in targets:
                dst = idx_get(target)
                if dst is None:
                    raise MessageToUnknownVertexError(target)
                bucket = acc[dst]
                if bucket is None:
                    acc[dst] = [message]
                    touched.append(dst)
                else:
                    bucket.append(message)
                if owner_of[dst] != src:
                    remote += 1
                n += 1
        finally:
            # Commit partial counts on an unknown-target raise, exactly
            # as per-message sends would have.
            worker.sent_logical += n
            worker.sent_remote += remote
            self.out_pending += n
        return n

    def fanout_fast_combining(self, source, targets, message) -> int:
        idx = self.cur_idx
        acc = self.acc
        cnt = self.cnt
        touched = self.acc_touched
        combine = self.combine
        worker = self.cur_worker
        nbrs = self.dense_out[idx]
        if (
            nbrs is not None
            and targets is self.dense_states[idx].out_edges
        ):
            for dst in nbrs:
                c = cnt[dst]
                if c:
                    acc[dst] = combine(acc[dst], message)
                    cnt[dst] = c + 1
                else:
                    acc[dst] = message
                    cnt[dst] = 1
                    touched.append(dst)
            n = len(nbrs)
            worker.sent_logical += n
            worker.sent_remote += self.remote_out[idx]
            self.out_pending += n
            return n
        idx_get = self.dense.idx_of.get
        owner_of = self.dense.owner_of
        src = self.cur_src
        n = remote = 0
        try:
            for target in targets:
                dst = idx_get(target)
                if dst is None:
                    raise MessageToUnknownVertexError(target)
                c = cnt[dst]
                if c:
                    acc[dst] = combine(acc[dst], message)
                    cnt[dst] = c + 1
                else:
                    acc[dst] = message
                    cnt[dst] = 1
                    touched.append(dst)
                if owner_of[dst] != src:
                    remote += 1
                n += 1
        finally:
            worker.sent_logical += n
            worker.sent_remote += remote
            self.out_pending += n
        return n

    def flush_worker_sends(self) -> None:
        """Record the finished worker's first-touched destinations in
        the global dirty list.

        Runs once per worker per superstep, O(touched destinations),
        and moves no payloads — slots stay in the per-worker
        accumulators until delivery.  Workers flush in index order,
        which is also global send order, so ``out_dirty`` gets the
        reference outbox's first-touch key order.
        """
        touched = self.acc_touched
        seen = self.slot_seen
        stamp = self.stamp
        dirty = self.out_dirty
        for dst in touched:
            if seen[dst] != stamp:
                seen[dst] = stamp
                dirty.append(dst)
        self.acc_touched = []
        if self.memory_budget is not None and touched:
            # The bound accumulator identifies the finishing worker
            # (workers run sequentially; acc is rebound per worker).
            acc = self.acc
            for widx, lane in enumerate(self.accs):
                if lane is acc:
                    self.account_lane(widx, touched)
                    break

    # ------------------------------------------------------------------
    # Spill tier: byte-accounted lane eviction under a memory budget
    # ------------------------------------------------------------------
    #
    # When ``memory_budget`` is set, every finished accumulator lane is
    # encoded with the shm-transport column codecs and charged against
    # the budget; lanes that would push the superstep's buffered volume
    # past it are written to disk and their slots cleared.  Delivery
    # reloads spilled lanes — in worker-index order, the order the
    # delivery scan reads them — before the normal slot scan, so the
    # spill is invisible to everything downstream: ``out_dirty`` was
    # recorded at flush time and the reloaded values round-trip exactly
    # (typed columns for conforming floats/ints, pickle otherwise — the
    # same equality contract the parallel transport already relies on).

    def account_lane(self, worker_index: int, touched) -> None:
        """Charge one worker's finished lane against the memory
        budget, spilling it to disk when the budget is exceeded.
        No-op without a budget or an empty lane."""
        if self.memory_budget is None or not touched:
            return
        acc = self.accs[worker_index]
        if self.cnts is not None:
            cnt = self.cnts[worker_index]
            payloads = [acc[d] for d in touched]
            counts = array("q", [cnt[d] for d in touched])
            enc = encode_lane(payloads)
            if enc is None:
                record = ("comb-obj", payloads, counts)
                nbytes = len(
                    pickle.dumps(payloads, pickle.HIGHEST_PROTOCOL)
                ) + 8 * len(counts)
            else:
                typecode, col = enc
                record = ("comb-col", typecode, col, counts)
                nbytes = col.itemsize * len(col) + 8 * len(counts)
        else:
            buckets = [acc[d] for d in touched]
            lens = array("q", [len(b) for b in buckets])
            flat = [m for b in buckets for m in b]
            enc = encode_lane(flat)
            if enc is None:
                record = ("plain-obj", buckets)
                nbytes = len(
                    pickle.dumps(buckets, pickle.HIGHEST_PROTOCOL)
                )
            else:
                typecode, col = enc
                record = ("plain-col", typecode, col, lens)
                nbytes = col.itemsize * len(col) + 8 * len(lens)
        nbytes += 8 * len(touched)
        if self._resident_bytes + nbytes <= self.memory_budget:
            self._resident_bytes += nbytes
            return
        root = self._spill_root()
        path = os.path.join(
            root, f"lane_{self._spill_seq}_{worker_index}.bin"
        )
        self._spill_seq += 1
        with open(path, "wb") as fh:
            pickle.dump(
                (array("q", touched), record),
                fh,
                pickle.HIGHEST_PROTOCOL,
            )
        self._spilled[worker_index] = path
        self.spilled_lanes += 1
        self.spilled_bytes += nbytes
        if self.cnts is not None:
            for d in touched:
                acc[d] = None
                cnt[d] = 0
        else:
            for d in touched:
                acc[d] = None

    def _reload_spilled(self) -> None:
        """Load every spilled lane back into its accumulator (worker
        order — the order the delivery scan consumes lanes) and delete
        the files."""
        for worker_index in sorted(self._spilled):
            path = self._spilled[worker_index]
            with open(path, "rb") as fh:
                touched, record = pickle.load(fh)
            os.unlink(path)
            acc = self.accs[worker_index]
            kind = record[0]
            if kind == "comb-col":
                _, _typecode, col, counts = record
                cnt = self.cnts[worker_index]
                for i, d in enumerate(touched):
                    acc[d] = col[i]
                    cnt[d] = counts[i]
            elif kind == "comb-obj":
                _, payloads, counts = record
                cnt = self.cnts[worker_index]
                for i, d in enumerate(touched):
                    acc[d] = payloads[i]
                    cnt[d] = counts[i]
            elif kind == "plain-col":
                _, _typecode, col, lens = record
                pos = 0
                for i, d in enumerate(touched):
                    end = pos + lens[i]
                    acc[d] = list(col[pos:end])
                    pos = end
            else:  # plain-obj
                _, buckets = record
                for i, d in enumerate(touched):
                    acc[d] = buckets[i]
        self._spilled = {}

    def _spill_root(self) -> str:
        if self._spill_dir is not None:
            path = os.fspath(self._spill_dir)
            os.makedirs(path, exist_ok=True)
            return path
        if self._spill_tmp is None:
            self._spill_tmp = tempfile.mkdtemp(prefix="repro-spill-")
        return self._spill_tmp

    def _drop_spill_files(self) -> None:
        """Discard pending spill files (path resets, rollbacks)."""
        for path in self._spilled.values():
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - defensive
                pass
        self._spilled = {}
        self._resident_bytes = 0

    def cleanup_spill(self) -> None:
        """Release everything the spill tier put on disk, including
        the lazily created temp directory.  Called by the engine when
        a run finishes (success or not)."""
        self._drop_spill_files()
        if self._spill_tmp is not None:
            shutil.rmtree(self._spill_tmp, ignore_errors=True)
            self._spill_tmp = None

    # ------------------------------------------------------------------
    # Execution-path management
    # ------------------------------------------------------------------

    def engage_fast_path(self) -> None:
        """Compile the dense index and switch to slot mailboxes.

        Called at construction and when a checkpoint restore rewinds
        the engine to a state where the fast path was active.  The
        dense order mirrors worker/`vertex_ids` order exactly, so
        execution sequencing is unchanged.
        """
        dense = build_dense_index(self.workers)
        self.dense = dense
        for worker, (start, stop) in zip(self.workers, dense.ranges):
            worker.range_start = start
            worker.range_stop = stop
        states = self.states
        dense_states = [states[vid] for vid in dense.id_of]
        self.dense_states = dense_states
        n = len(dense.id_of)
        # Compile the dense adjacency: full-neighbor fanouts iterate
        # precomputed int indices instead of hashing ids per message.
        # A vertex with a dangling out-edge (no matching state) gets
        # None and falls back to the generic per-target loop, which
        # raises MessageToUnknownVertexError exactly as the reference
        # path would.
        idx_of = dense.idx_of
        owner_of = dense.owner_of
        dense_out: List[Optional[List[int]]] = [None] * n
        remote_out = [0] * n
        # Snapshot-backed graphs compile straight from the CSR arrays:
        # the row positions are permuted to dense indices with one flat
        # table instead of hashing every target id.  Row order equals
        # out_edges insertion order by construction (the state store
        # built those dicts from out_edge_items), so the compiled
        # adjacency is identical to the generic walk below.
        graph = self._engine._graph
        positions = perm = None
        if is_graph_snapshot(graph) and graph.num_vertices == n:
            try:
                positions = [
                    graph.position_of(vid) for vid in dense.id_of
                ]
            except VertexNotFoundError:  # pragma: no cover - defensive
                positions = None
            if positions is not None:
                perm = [0] * n
                for idx, p in enumerate(positions):
                    perm[p] = idx
        for idx, state in enumerate(dense_states):
            src = owner_of[idx]
            if perm is not None:
                row = graph.out_row_positions(positions[idx])
                if len(row) == len(state.out_edges):
                    nbrs = [perm[q] for q in row]
                    remote = 0
                    for j in nbrs:
                        if owner_of[j] != src:
                            remote += 1
                    dense_out[idx] = nbrs
                    remote_out[idx] = remote
                    continue
            nbrs: List[int] = []
            remote = 0
            for target in state.out_edges:
                j = idx_of.get(target)
                if j is None:
                    nbrs = None
                    break
                nbrs.append(j)
                if owner_of[j] != src:
                    remote += 1
            if nbrs is not None:
                dense_out[idx] = nbrs
                remote_out[idx] = remote
        self.dense_out = dense_out
        self.remote_out = remote_out
        self.in_slots = [None] * n
        self.in_dirty = []
        self.out_dirty = []
        self.out_pending = 0
        self.accs = [[None] * n for _ in self.workers]
        self.cnts = (
            [[0] * n for _ in self.workers]
            if self._combiner is not None
            else None
        )
        self.acc = None
        self.cnt = None
        self.acc_touched = []
        self.slot_seen = [0] * n
        self.stamp = 0
        self._drop_spill_files()
        self.inbox = defaultdict(list)  # idle while fast
        self.outbox = defaultdict(list)
        engine = self._engine
        if self._combiner is not None:
            # Stock SumCombiner folds with the C-level add (exactly
            # ``a + b``, the same expression its combine() evaluates),
            # skipping a Python frame per fold.  Gated on the exact
            # type so subclasses keep their overridden behavior.
            if type(self._combiner) is SumCombiner:
                self.combine = operator.add
            else:
                self.combine = self._combiner.combine
            self.enqueue = engine._enqueue = self.enqueue_fast_combining
            self.fanout = engine._fanout = self.fanout_fast_combining
        else:
            self.enqueue = engine._enqueue = self.enqueue_fast
            self.fanout = engine._fanout = self.fanout_fast
        self.fast_active = True

    def disengage_fast_path(self) -> None:
        """Fall back to the reference dict path for the rest of the
        run (the frozen dense index no longer matches the topology).

        Undelivered slot-mailbox messages move to the dict inbox in
        delivery order, so the reference path resumes byte-identically
        next superstep.
        """
        inbox: Dict[Hashable, List[Any]] = defaultdict(list)
        id_of = self.dense.id_of
        in_slots = self.in_slots
        for idx in self.in_dirty:
            inbox[id_of[idx]] = in_slots[idx]
        self.inbox = inbox
        self.outbox = defaultdict(list)
        self._clear_dense()

    def reset_execution_path(self, fast: bool) -> None:
        """Adopt the execution path recorded in a checkpoint.

        Invoked (via the engine) by
        :func:`~repro.bsp.checkpoint.restore_checkpoint` after vertex
        states, ownership, and worker lists are restored; rebuilds the
        path-specific mailboxes empty.
        """
        if fast and self._engine._fast_enabled:
            self.engage_fast_path()
        else:
            self._clear_dense()
            self.inbox = defaultdict(list)
            self.outbox = defaultdict(list)

    def _clear_dense(self) -> None:
        engine = self._engine
        self.dense = None
        self.dense_states = None
        self.dense_out = None
        self.remote_out = None
        self.in_slots = None
        self.in_dirty = []
        self.out_dirty = []
        self.out_pending = 0
        self.accs = None
        self.cnts = None
        self.acc = None
        self.cnt = None
        self.acc_touched = []
        self.slot_seen = None
        self._drop_spill_files()
        self.enqueue = engine._enqueue = self.enqueue_reference
        self.fanout = engine._fanout = self.fanout_reference
        self.fast_active = False

    def reset_outbox(self) -> None:
        self.outbox = defaultdict(list)

    def pending_messages(self) -> int:
        """Undelivered send count after a compute pass, either layout."""
        if self.fast_active:
            return self.out_pending
        return sum(len(v) for v in self.outbox.values())

    def slot_view(self, start: int, stop: int):
        """Bulk view of the inbound slot mailboxes for dense range
        ``[start, stop)``: one slice, no per-slot indexing.  The
        vectorized kernels gather over these views; entries are the
        same list objects the per-vertex pass would read (``None`` for
        empty slots), so nothing is copied."""
        return self.in_slots[start:stop]

    def rank_inbound(self, num_ranks: int):
        """The dense inbox bucketed by owning rank for the parallel
        backend's dispatch: one ``[(dense idx, messages)]`` list per
        rank, in slot-delivery order (``in_dirty``), which is the
        order the serial dense pass would consume the same slots."""
        owner_of = self.dense.owner_of
        in_slots = self.in_slots
        inbound = [[] for _ in range(num_ranks)]
        for idx in self.in_dirty:
            inbound[owner_of[idx]].append((idx, in_slots[idx]))
        return inbound

    # ------------------------------------------------------------------
    # Checkpoint views
    # ------------------------------------------------------------------

    def inbox_snapshot_items(self):
        """``(vertex_id, messages)`` pairs of the undelivered inbox in
        delivery order, independent of mailbox layout.  Used by
        :func:`~repro.bsp.checkpoint.take_checkpoint`."""
        if self.fast_active:
            id_of = self.dense.id_of
            in_slots = self.in_slots
            return [
                (id_of[idx], in_slots[idx]) for idx in self.in_dirty
            ]
        return list(self.inbox.items())

    def restore_inbox(self, inbox: Dict[Hashable, List[Any]]) -> None:
        """Adopt ``inbox`` (delivery-ordered) into the active mailbox
        layout.  Used by checkpoint restore."""
        if self.fast_active:
            idx_of = self.dense.idx_of
            in_slots = self.in_slots
            dirty = self.in_dirty
            for vid, msgs in inbox.items():
                idx = idx_of[vid]
                in_slots[idx] = list(msgs)
                dirty.append(idx)
        else:
            fresh: Dict[Hashable, List[Any]] = defaultdict(list)
            for vid, msgs in inbox.items():
                fresh[vid] = list(msgs)
            self.inbox = fresh

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def deliver(self, superstep: int) -> int:
        """Move the outbox into next superstep's inbox.

        Applies the combiner per (destination, sending worker),
        accounts network traffic, charges ``received_logical`` at
        delivery time (so send/receive totals balance even when a
        mutation removed the destination — the sender's charges are
        reversed for such dropped messages), and runs the injected
        network faults through the reliable-delivery layer.  Returns
        the number of logical messages delivered.
        """
        engine = self._engine
        delivered = 0
        combiner = self._combiner
        inbox = self.inbox
        injector = engine._injector
        log_deliveries = engine._confined_recovery
        log_entry: Dict[Hashable, List[Any]] = {}
        faults = DeliveryFaults() if injector is not None else None
        for target, entries in self.outbox.items():
            if target not in self.states:
                # Destination removed by a mutation this superstep:
                # the messages are dropped, so reverse the senders'
                # charges to keep the logical books balanced.
                dst_idx = self.owner.get(target)
                for src_worker, _ in entries:
                    w = self.workers[src_worker]
                    w.sent_logical -= 1
                    if dst_idx is None or src_worker != dst_idx:
                        w.sent_remote -= 1
                continue
            dst_worker = self.workers[self.owner[target]]
            dst_worker.received_logical += len(entries)
            if combiner is None:
                msgs = [m for _, m in entries]
                for src_worker, _ in entries:
                    self.workers[src_worker].sent_network += 1
                dst_worker.received_network += len(entries)
            else:
                groups: Dict[int, Any] = {}
                for src_worker, m in entries:
                    if src_worker in groups:
                        groups[src_worker] = combiner.combine(
                            groups[src_worker], m
                        )
                    else:
                        groups[src_worker] = m
                msgs = list(groups.values())
                for src_worker in groups:
                    self.workers[src_worker].sent_network += 1
                dst_worker.received_network += len(groups)
            if injector is not None:
                faults.absorb(injector.network_faults(len(msgs)))
            inbox[target].extend(msgs)
            if log_deliveries:
                log_entry[target] = list(inbox[target])
            delivered += len(msgs)
        if log_deliveries:
            self._store.message_log[superstep + 1] = log_entry
        if injector is not None:
            injector.commit(faults, engine._run_stats)
            if engine._trace is not None and faults.any:
                engine._trace.emit(
                    FaultInjected(
                        superstep=superstep,
                        fault="network",
                        retransmitted=faults.retransmitted,
                        duplicated=faults.duplicated,
                        delayed=faults.delayed,
                    )
                )
        self.outbox = defaultdict(list)
        return delivered

    def deliver_fast(self, superstep: int, mutated: bool) -> int:
        """Slot-mailbox delivery: identical accounting and fault-draw
        order to :meth:`deliver`, over dense indices.

        Network counts are the occupied ``(destination, src_worker)``
        slots — the combiner already folded at send time — and
        ``received_logical`` comes from the per-slot logical tallies,
        so the logical/network split matches the reference path
        exactly.  ``mutated`` enables the removed-destination check
        (and charge reversal) that the reference path performs; when
        no mutation was applied this superstep the check is skipped,
        because every dense id is live by construction.
        """
        engine = self._engine
        delivered = 0
        injector = engine._injector
        workers = self.workers
        dense = self.dense
        owner_of = dense.owner_of
        id_of = dense.id_of
        in_slots = self.in_slots
        in_dirty = self.in_dirty
        states = self.states
        combining = self._combiner is not None
        faults = DeliveryFaults() if injector is not None else None
        if self._spilled:
            self._reload_spilled()
        if combining:
            lanes = list(zip(workers, self.accs, self.cnts))
        else:
            lanes = list(zip(workers, self.accs))
        for dst in self.out_dirty:
            if mutated and id_of[dst] not in states:
                # Dropped: destination removed this superstep —
                # reverse the senders' charges, as the reference
                # delivery does.
                target_owner = self.owner.get(id_of[dst])
                if combining:
                    for lane in lanes:
                        count = lane[2][dst]
                        if count:
                            lane[2][dst] = 0
                            lane[1][dst] = None
                            w = lane[0]
                            w.sent_logical -= count
                            if (
                                target_owner is None
                                or w.index != target_owner
                            ):
                                w.sent_remote -= count
                else:
                    for lane in lanes:
                        bucket = lane[1][dst]
                        if bucket is not None:
                            lane[1][dst] = None
                            w = lane[0]
                            w.sent_logical -= len(bucket)
                            if (
                                target_owner is None
                                or w.index != target_owner
                            ):
                                w.sent_remote -= len(bucket)
                continue
            dst_worker = workers[owner_of[dst]]
            if combining:
                received = 0
                msgs = []
                for src_worker, acc_w, cnt_w in lanes:
                    count = cnt_w[dst]
                    if count:
                        cnt_w[dst] = 0
                        msgs.append(acc_w[dst])
                        acc_w[dst] = None
                        received += count
                        src_worker.sent_network += 1
                dst_worker.received_logical += received
                dst_worker.received_network += len(msgs)
            else:
                msgs = None
                for src_worker, acc_w in lanes:
                    bucket = acc_w[dst]
                    if bucket is not None:
                        acc_w[dst] = None
                        src_worker.sent_network += len(bucket)
                        if msgs is None:
                            msgs = bucket
                        else:
                            msgs.extend(bucket)
                received = len(msgs)
                dst_worker.received_logical += received
                dst_worker.received_network += received
            if injector is not None:
                faults.absorb(injector.network_faults(len(msgs)))
            existing = in_slots[dst]
            if existing is None:
                in_slots[dst] = msgs
                in_dirty.append(dst)
            else:  # pragma: no cover - inbox is drained every pass
                existing.extend(msgs)
            delivered += len(msgs)
        self.out_dirty = []
        self.out_pending = 0
        self._resident_bytes = 0
        if injector is not None:
            injector.commit(faults, engine._run_stats)
            if engine._trace is not None and faults.any:
                engine._trace.emit(
                    FaultInjected(
                        superstep=superstep,
                        fault="network",
                        retransmitted=faults.retransmitted,
                        duplicated=faults.duplicated,
                        delayed=faults.delayed,
                    )
                )
        return delivered
