"""Simulated Pregel/BSP runtime: vertex programs, workers, combiners,
aggregators, master computation, topology mutation and full cost
instrumentation."""

from repro.bsp.aggregator import (
    Aggregator,
    AndAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    SumAggregator,
)
from repro.bsp.combiner import (
    Combiner,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.bsp.checkpoint import (
    Checkpoint,
    CheckpointStore,
    EngineSnapshot,
    cow_copy,
    take_checkpoint,
    restore_checkpoint,
)
from repro.bsp.context import ComputeContext, MasterContext
from repro.bsp.durability import (
    DurableCheckpointStore,
    config_fingerprint,
    graph_signature,
    open_durable_store,
)
from repro.bsp.fabric import MessageFabric
from repro.bsp.loop import CheckpointPolicy, SuperstepLoop
from repro.bsp.result import RunResult
from repro.bsp.state import SnapshotRecovery, StateStore
from repro.bsp.faults import (
    CrashFault,
    DeliveryFaults,
    FaultInjector,
    FaultPlan,
    chaos_plan,
    crash_plan,
    drop_plan,
    duplicate_plan,
)
from repro.bsp.async_engine import AsyncEngine, AsyncResult, run_async
from repro.bsp.block import (
    BlockContext,
    BlockEngine,
    BlockProgram,
    BlockResult,
    BlockView,
    run_blocks,
)
from repro.bsp.engine import (
    BACKENDS,
    PregelEngine,
    PregelResult,
    create_engine,
    get_default_backend,
    run_program,
    set_default_backend,
)
from repro.bsp.parallel import (
    ParallelBackend,
    ParallelPregelEngine,
    default_start_method,
)
from repro.bsp.gas import (
    GASEngine,
    GASProgram,
    GASResult,
    NeighborView,
    run_gas,
)
from repro.bsp.program import VertexProgram
from repro.bsp.vertex import VertexState
from repro.bsp.worker import Worker, superstep_profile

__all__ = [
    "Checkpoint",
    "CheckpointPolicy",
    "CheckpointStore",
    "EngineSnapshot",
    "MessageFabric",
    "RunResult",
    "SnapshotRecovery",
    "StateStore",
    "SuperstepLoop",
    "cow_copy",
    "take_checkpoint",
    "restore_checkpoint",
    "DurableCheckpointStore",
    "config_fingerprint",
    "graph_signature",
    "open_durable_store",
    "CrashFault",
    "DeliveryFaults",
    "FaultInjector",
    "FaultPlan",
    "chaos_plan",
    "crash_plan",
    "drop_plan",
    "duplicate_plan",
    "Aggregator",
    "AndAggregator",
    "CountAggregator",
    "MaxAggregator",
    "MinAggregator",
    "OrAggregator",
    "SumAggregator",
    "Combiner",
    "MaxCombiner",
    "MinCombiner",
    "SumCombiner",
    "ComputeContext",
    "MasterContext",
    "BACKENDS",
    "PregelEngine",
    "PregelResult",
    "ParallelBackend",
    "ParallelPregelEngine",
    "create_engine",
    "default_start_method",
    "get_default_backend",
    "run_program",
    "set_default_backend",
    "AsyncEngine",
    "AsyncResult",
    "run_async",
    "BlockContext",
    "BlockEngine",
    "BlockProgram",
    "BlockResult",
    "BlockView",
    "run_blocks",
    "GASEngine",
    "GASProgram",
    "GASResult",
    "NeighborView",
    "run_gas",
    "VertexProgram",
    "VertexState",
    "Worker",
    "superstep_profile",
]
