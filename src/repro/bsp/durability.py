"""Durable on-disk checkpoints and cross-process resume.

PR 1 gave the engine checkpoint/rollback fault tolerance, but every
checkpoint lived in the coordinator's heap: a SIGKILL of the run lost
all work.  This module persists each checkpoint to disk behind the
existing :class:`~repro.bsp.checkpoint.CheckpointStore` interface so a
run can be resumed in a *fresh interpreter*, byte-identical to the
uninterrupted run.  That is the operational half of the paper's
fault-tolerance story: recovery cost, not steady-state speed, decides
whether a long iterative job is usable (Ammar & Özsu treat
fault-handling behavior as a first-class differentiator).

On-disk format
--------------
A checkpoint directory holds one JSON manifest plus one binary record
per retained checkpoint::

    MANIFEST.json       # format version, run id, config fingerprint,
                        # write counters, per-checkpoint index entries
    ckpt-000001.bin     # pickled {"format_version", "superstep",
    ckpt-000002.bin     #          "checkpoint", "context"}
    ...

Every write is atomic: the bytes go to a temp file in the same
directory, are flushed and ``fsync``'d, and only then renamed over the
final name (``os.replace``), so a crash mid-write can never leave a
half-written checkpoint under a valid name.  The manifest records each
record's byte length and CRC-32; on load both are verified *before*
unpickling, and any record that fails — truncated, bit-flipped,
undecodable — is skipped in favor of the newest older intact
checkpoint.  Only when every retained generation is damaged does the
store raise :class:`~repro.errors.CheckpointCorruptionError`; raw
pickle tracebacks never escape.

Config fingerprint
------------------
The manifest carries a fingerprint of everything that shapes the
deterministic execution: the graph structure, the program's class and
constructor state, worker count, seed, checkpoint interval, recovery
budget, recovery mode, execution-path request, BPPA tracking, the
combiner/partitioner/cost-model configuration, and the fault plan.
Resuming against a directory whose fingerprint differs raises
:class:`~repro.errors.FingerprintMismatchError` instead of silently
mixing incompatible state.  Three knobs are deliberately *excluded*:

* the backend — serial, fast-path and process-parallel execution are
  byte-identical by contract, so a run checkpointed under one backend
  may resume under another;
* the parallel backend's ``transport`` — columnar and pickle are wire
  formats over the same rank-ordered merge, byte-identical by the
  same contract (the ``transport`` kwarg is consumed by
  ``ParallelPregelEngine`` and never reaches the fingerprint), so a
  run checkpointed under one transport resumes under the other;
* ``max_supersteps`` — it is a guard, not semantics; the canonical
  reason to resume is "the run was killed, give it more budget".

Resume context
--------------
A :class:`~repro.bsp.checkpoint.Checkpoint` rewinds a *live* engine;
resuming in a fresh process additionally needs the run-scoped state
that rollback never restores because the crashed process still had it:
the :class:`~repro.metrics.stats.RunStats` accumulated so far, the
aggregate history, execution/crash counters, per-superstep checkpoint
costs, the confined-recovery logs, the program's mutable attributes,
and the fault injector's RNG stream.  :func:`build_run_context`
captures all of it at every durable write; :func:`resume_engine`
adopts it into a fresh engine before the standard
:func:`~repro.bsp.checkpoint.restore_checkpoint` runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import uuid
import zlib
from typing import Any, List, Optional, Tuple

from repro.bsp.checkpoint import CheckpointStore, restore_checkpoint
from repro.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    FingerprintMismatchError,
)

#: Version of the on-disk layout; bumped on incompatible changes.
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


# ---------------------------------------------------------------------
# Atomic file writes
# ---------------------------------------------------------------------


def _fsync_directory(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    A crash at any point leaves either the old content or the new
    content under ``path`` — never a prefix of the new bytes.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".part"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


# ---------------------------------------------------------------------
# Config fingerprint
# ---------------------------------------------------------------------


def _object_signature(obj: Any) -> str:
    """A stable textual identity for a configured helper object:
    class identity plus sorted constructor state."""
    if obj is None:
        return "none"
    cls = type(obj)
    state = getattr(obj, "__dict__", None) or {}
    inner = ",".join(
        f"{key}={state[key]!r}" for key in sorted(state)
    )
    return f"{cls.__module__}.{cls.__qualname__}({inner})"


def graph_signature(graph) -> str:
    """Structure digest of a graph: counts plus a CRC-32 over the
    canonically-sorted vertex and edge descriptions."""
    crc = 0
    for desc in sorted(f"v:{v!r}" for v in graph.vertices()):
        crc = zlib.crc32(desc.encode("utf-8"), crc)
    for desc in sorted(
        f"e:{u!r}->{v!r}:{d.weight!r}:{d.label!r}"
        for u, v, d in graph.edges(data=True)
    ):
        crc = zlib.crc32(desc.encode("utf-8"), crc)
    return (
        f"graph(n={graph.num_vertices},m={graph.num_edges},"
        f"directed={graph.directed},crc={crc & 0xFFFFFFFF:08x})"
    )


def config_fingerprint(
    graph,
    program,
    *,
    num_workers: int,
    seed: Optional[int],
    checkpoint_interval: Optional[int],
    max_recovery_attempts: int,
    confined_recovery: bool,
    use_fast_path: Optional[bool],
    track_bppa: bool,
    combiner,
    partitioner,
    cost_model,
    fault_plan,
) -> str:
    """Fingerprint the (graph, program, engine-config) tuple.

    Everything that shapes deterministic execution is folded in; the
    backend, the parallel transport, and ``max_supersteps`` are
    deliberately excluded (see the module docstring).  Uses SHA-256
    over canonical ``repr`` strings, so the result is independent of
    ``PYTHONHASHSEED``.
    """
    parts = [
        f"format={FORMAT_VERSION}",
        graph_signature(graph),
        f"program={_object_signature(program)}",
        f"program_name={getattr(program, 'name', '')!r}",
        f"num_workers={num_workers}",
        f"seed={seed!r}",
        f"checkpoint_interval={checkpoint_interval!r}",
        f"max_recovery_attempts={max_recovery_attempts!r}",
        f"confined_recovery={bool(confined_recovery)!r}",
        f"use_fast_path={use_fast_path!r}",
        f"track_bppa={bool(track_bppa)!r}",
        f"combiner={_object_signature(combiner)}",
        f"partitioner={_object_signature(partitioner)}",
        f"cost_model={cost_model!r}",
        f"fault_plan={fault_plan!r}",
    ]
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------
# The durable store
# ---------------------------------------------------------------------


class DurableCheckpointStore(CheckpointStore):
    """A :class:`CheckpointStore` whose checkpoints also live on disk.

    The in-memory behavior is unchanged — ``latest`` still serves
    in-process rollback with zero deserialization — and
    :meth:`persist` additionally writes each checkpoint (plus its
    resume context) as an atomic, checksummed record.  ``keep``
    generations are retained so corruption of the newest record can
    fall back to an older intact one.

    Open with ``resume=False`` to start a directory fresh (an existing
    manifest must carry the same fingerprint, otherwise
    :class:`FingerprintMismatchError`), or ``resume=True`` to load the
    newest intact checkpoint, after which :meth:`resume_state` hands
    the engine its ``(checkpoint, context)`` pair.
    """

    durable = True

    def __init__(
        self,
        directory: str,
        *,
        fingerprint: str,
        resume: bool = False,
        keep: int = 3,
        run_id: Optional[str] = None,
    ):
        super().__init__()
        if keep < 2:
            raise ValueError(
                f"keep must be >= 2 for corruption fallback, got {keep}"
            )
        self.directory = os.path.abspath(directory)
        self.fingerprint = fingerprint
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)
        self._resume_record: Optional[Tuple[Any, Optional[dict]]] = None
        if resume:
            manifest = self._read_manifest()
            self._check_compatible(manifest)
            checkpoint, context = self._load_latest_intact(manifest)
            self._manifest = manifest
            self._seq = max(
                entry["seq"] for entry in manifest["checkpoints"]
            )
            self.latest = checkpoint
            self.written = int(manifest.get("total_written", 0))
            self.total_size = int(manifest.get("total_atoms", 0))
            self._resume_record = (checkpoint, context)
        else:
            existing = self._try_read_manifest()
            if existing is not None:
                found = existing.get("fingerprint")
                if found != fingerprint:
                    raise FingerprintMismatchError(
                        fingerprint, found, self.directory
                    )
            self._manifest = {
                "format_version": FORMAT_VERSION,
                "run_id": run_id or uuid.uuid4().hex,
                "fingerprint": fingerprint,
                "total_written": 0,
                "total_atoms": 0,
                "checkpoints": [],
            }
            self._seq = 0
            self._remove_stale_records()
            self._write_manifest()

    # -- writing ----------------------------------------------------

    def persist(self, checkpoint, context: Optional[dict] = None):
        """Write ``checkpoint`` (+ resume ``context``) durably.

        Called by the engine after :meth:`save` and after all
        checkpoint accounting, so the persisted context matches the
        uninterrupted run's state at this boundary exactly.
        """
        record = {
            "format_version": FORMAT_VERSION,
            "superstep": checkpoint.superstep,
            "checkpoint": checkpoint,
            "context": context,
        }
        try:
            blob = pickle.dumps(record, _PICKLE_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                "checkpoint is not durable: state failed to pickle "
                f"({exc!r}); use picklable vertex values and program "
                "attributes with checkpoint_dir"
            ) from exc
        self._seq += 1
        filename = f"ckpt-{self._seq:06d}.bin"
        atomic_write(os.path.join(self.directory, filename), blob)
        entries = self._manifest["checkpoints"]
        entries.append(
            {
                "seq": self._seq,
                "superstep": checkpoint.superstep,
                "file": filename,
                "length": len(blob),
                "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
                "atoms": checkpoint.size,
            }
        )
        while len(entries) > self.keep:
            stale = entries.pop(0)
            try:
                os.unlink(
                    os.path.join(self.directory, stale["file"])
                )
            except OSError:
                pass
        self._manifest["total_written"] = self.written
        self._manifest["total_atoms"] = self.total_size
        self._write_manifest()

    def _write_manifest(self) -> None:
        payload = json.dumps(
            self._manifest, indent=2, sort_keys=True
        ).encode("utf-8")
        atomic_write(
            os.path.join(self.directory, MANIFEST_NAME), payload
        )

    def _remove_stale_records(self) -> None:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.startswith("ckpt-") and name.endswith(".bin"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    # -- reading ----------------------------------------------------

    def resume_state(self) -> Optional[Tuple[Any, Optional[dict]]]:
        """The ``(checkpoint, context)`` loaded at open time, or None
        when the store was opened fresh."""
        return self._resume_record

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _try_read_manifest(self) -> Optional[dict]:
        try:
            with open(self._manifest_path(), "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            return None

    def _read_manifest(self) -> dict:
        path = self._manifest_path()
        if not os.path.exists(path):
            raise CheckpointError(
                f"cannot resume: no checkpoint manifest at {path!r}"
            )
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CheckpointCorruptionError(
                f"cannot resume: manifest unreadable ({exc})"
            ) from exc
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise CheckpointCorruptionError(
                f"cannot resume: manifest at {path!r} is not valid "
                f"JSON ({exc})"
            ) from exc
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("checkpoints"), list
        ):
            raise CheckpointCorruptionError(
                f"cannot resume: manifest at {path!r} has an "
                "unexpected shape"
            )
        return manifest

    def _check_compatible(self, manifest: dict) -> None:
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"cannot resume: checkpoint format version {version!r}"
                f" is not supported (this build writes "
                f"{FORMAT_VERSION})"
            )
        found = manifest.get("fingerprint")
        if self.fingerprint is not None and found != self.fingerprint:
            raise FingerprintMismatchError(
                self.fingerprint, found, self.directory
            )

    def _load_latest_intact(
        self, manifest: dict
    ) -> Tuple[Any, Optional[dict]]:
        entries = sorted(
            manifest["checkpoints"],
            key=lambda entry: entry.get("seq", 0),
            reverse=True,
        )
        if not entries:
            raise CheckpointError(
                f"cannot resume: manifest at {self.directory!r} "
                "lists no checkpoints (the run died before its first "
                "durable write)"
            )
        failures: List[str] = []
        for entry in entries:
            try:
                record = self._read_record(entry)
            except CheckpointCorruptionError as exc:
                failures.append(str(exc))
                continue
            return record["checkpoint"], record.get("context")
        raise CheckpointCorruptionError(
            "cannot resume: every retained checkpoint is corrupt: "
            + "; ".join(failures)
        )

    def _read_record(self, entry: dict) -> dict:
        name = entry.get("file", "<missing>")
        path = os.path.join(self.directory, name)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise CheckpointCorruptionError(
                f"{name}: unreadable ({exc})"
            ) from exc
        if len(blob) != entry.get("length"):
            raise CheckpointCorruptionError(
                f"{name}: truncated ({len(blob)} bytes, manifest "
                f"says {entry.get('length')})"
            )
        if zlib.crc32(blob) & 0xFFFFFFFF != entry.get("crc32"):
            raise CheckpointCorruptionError(
                f"{name}: CRC-32 checksum mismatch"
            )
        try:
            record = pickle.loads(blob)
        except Exception as exc:
            raise CheckpointCorruptionError(
                f"{name}: payload undecodable ({exc!r})"
            ) from exc
        if (
            not isinstance(record, dict)
            or "checkpoint" not in record
            or record.get("format_version") != FORMAT_VERSION
        ):
            raise CheckpointCorruptionError(
                f"{name}: record has an unexpected shape"
            )
        return record


def open_durable_store(
    directory: str, fingerprint: str, resume
) -> DurableCheckpointStore:
    """Open ``directory`` for an engine run.

    ``resume`` is False (start fresh), True (must resume — any open
    failure propagates as a typed :class:`CheckpointError`), or
    ``"auto"`` (resume when an intact checkpoint exists, otherwise
    start fresh).  A fingerprint mismatch always raises: ``"auto"``
    must never silently discard another configuration's checkpoints.
    """
    if resume:
        try:
            return DurableCheckpointStore(
                directory, fingerprint=fingerprint, resume=True
            )
        except FingerprintMismatchError:
            raise
        except CheckpointError:
            if resume != "auto":
                raise
    return DurableCheckpointStore(
        directory, fingerprint=fingerprint, resume=False
    )


# ---------------------------------------------------------------------
# Resume context: run-scoped state beyond the Checkpoint itself
# ---------------------------------------------------------------------


def build_run_context(engine, stats) -> dict:
    """Capture the run-scoped state a fresh interpreter needs to
    continue from this superstep boundary.

    The :class:`Checkpoint` already carries the engine state that
    rollback restores; this adds everything an in-process rollback
    keeps implicitly: the accumulated stats, aggregate history,
    execution/crash counters, checkpoint-cost ledger, the
    confined-recovery logs, the program's mutable attributes, and the
    fault injector's RNG stream and crash budget.
    """
    store = engine._store
    injector = engine._injector
    return {
        "stats": stats,
        "aggregate_history": list(engine._aggregate_history),
        "exec_counts": dict(engine._exec_counts),
        "crash_counts": dict(engine._loop.crash_counts),
        "ckpt_costs": dict(store.ckpt_costs),
        "message_log": {
            superstep: {
                vid: list(msgs) for vid, msgs in log.items()
            }
            for superstep, log in store.message_log.items()
        },
        "wake_log": dict(store.wake_log),
        "program_state": dict(
            getattr(engine._program, "__dict__", {})
        ),
        "injector": None
        if injector is None
        else injector.snapshot_state(),
    }


def _rebuild_stats(stats):
    """Reconstruct an unpickled :class:`RunStats` natively.

    The determinism oracle compares ``pickle.dumps(stats)`` bytes, and
    pickle memoizes strings by *identity*: a natively built stats
    object shares interned attribute-name strings across its dicts,
    while an unpickled one carries fresh string objects, so the same
    values serialize to different bytes.  Rebuilding every dataclass
    through its constructor restores the native interning, making the
    resumed run's stats byte-identical to the uninterrupted run's.
    """
    clean = dataclasses.replace(
        stats,
        cost_model=dataclasses.replace(stats.cost_model),
        supersteps=[
            dataclasses.replace(entry) for entry in stats.supersteps
        ],
    )
    clean.wall = None
    clean.peak_rss_bytes = None
    return clean


def resume_engine(engine, checkpoint, context: dict):
    """Adopt a durable ``(checkpoint, context)`` pair into a freshly
    constructed engine; returns ``(start_superstep, stats)``.

    The run-scoped context is installed first, then the standard
    :func:`restore_checkpoint` rewinds the engine state exactly as an
    in-process rollback would (with the ``Rollback`` trace event
    suppressed: resuming is a continuation, not a recovery).
    """
    stats = _rebuild_stats(context["stats"])
    store = engine._store
    engine._aggregate_history = list(context["aggregate_history"])
    engine._exec_counts.clear()
    engine._exec_counts.update(context["exec_counts"])
    engine._loop.crash_counts = dict(context["crash_counts"])
    store.ckpt_costs = dict(context["ckpt_costs"])
    store.message_log = {
        superstep: {vid: list(msgs) for vid, msgs in log.items()}
        for superstep, log in context["message_log"].items()
    }
    store.wake_log = dict(context["wake_log"])
    program_state = context.get("program_state")
    if program_state is not None and hasattr(
        engine._program, "__dict__"
    ):
        engine._program.__dict__.clear()
        engine._program.__dict__.update(program_state)
    injector_state = context.get("injector")
    if injector_state is not None and engine._injector is not None:
        engine._injector.restore_state(injector_state)
    trace, engine._trace = engine._trace, None
    try:
        restore_checkpoint(engine, checkpoint)
    finally:
        engine._trace = trace
    return checkpoint.superstep, stats
