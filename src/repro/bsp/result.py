"""The common result protocol every engine's run() satisfies.

The decomposed runtime hosts four execution models — Pregel
(:class:`~repro.bsp.engine.PregelResult`), GAS
(:class:`~repro.bsp.gas.GASResult`), block-centric
(:class:`~repro.bsp.block.BlockResult`) and asynchronous
(:class:`~repro.bsp.async_engine.AsyncResult`).  Each keeps its
model-specific fields (iteration counts, update totals, block maps),
but all of them expose the shared surface below, so harnesses — the
CLI's engine smoke, the differential fuzzer, cross-model cost
comparisons — can consume any engine's result uniformly:

``values``
    The converged per-vertex answers.
``stats``
    The :class:`~repro.metrics.stats.RunStats` ledger (per-superstep
    worker profiles, cost-model totals, recovery overhead).
``num_supersteps``
    How many supersteps (rounds, for the async engine) committed.

The protocol is ``runtime_checkable`` so ``isinstance(result,
RunResult)`` is a structural check — no result type inherits from
anything here.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Hashable,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.metrics.stats import RunStats


@runtime_checkable
class RunResult(Protocol):
    """Structural type of every engine's run() result."""

    values: Dict[Hashable, Any]
    stats: Optional[RunStats]

    @property
    def num_supersteps(self) -> int: ...
