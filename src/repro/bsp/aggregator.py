"""Pregel aggregators: commutative-associative global reductions.

Vertices contribute values during superstep ``S`` via
``ctx.aggregate(name, value)``; the reduced result is visible to every
vertex in superstep ``S + 1`` (and to ``master_compute`` right after
``S``), exactly as in Pregel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any


class Aggregator(ABC):
    """Base class: an identity element plus a binary reduction."""

    @abstractmethod
    def initial(self) -> Any:
        """The identity value at the start of each superstep."""

    @abstractmethod
    def reduce(self, current: Any, value: Any) -> Any:
        """Fold ``value`` into the running ``current``."""


class SumAggregator(Aggregator):
    """Numeric sum (identity 0)."""

    def initial(self):
        return 0

    def reduce(self, current, value):
        return current + value


class CountAggregator(SumAggregator):
    """Counts contributions; vertices typically aggregate ``1``."""


class MinAggregator(Aggregator):
    """Minimum; identity ``None`` (no contribution)."""

    def initial(self):
        return None

    def reduce(self, current, value):
        if current is None:
            return value
        return value if value < current else current


class MaxAggregator(Aggregator):
    """Maximum; identity ``None`` (no contribution)."""

    def initial(self):
        return None

    def reduce(self, current, value):
        if current is None:
            return value
        return value if value > current else current


class AndAggregator(Aggregator):
    """Logical conjunction (identity True) — "did every vertex …?"."""

    def initial(self):
        return True

    def reduce(self, current, value):
        return bool(current and value)


class OrAggregator(Aggregator):
    """Logical disjunction (identity False) — "did any vertex …?"."""

    def initial(self):
        return False

    def reduce(self, current, value):
        return bool(current or value)
