"""Compute and master contexts: the API surface a vertex program uses
beyond its own vertex state."""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Iterable, Optional

from repro.bsp.mutation import MutationLog
from repro.bsp.vertex import VertexState


class ComputeContext:
    """Passed to every ``compute()`` call.

    One instance is reused across all vertices of a superstep; the
    engine rebinds it per vertex so the per-vertex send/charge counters
    feed the BPPA tracker.  Programs should treat it as opaque API.

    ``engine`` is anything implementing the narrow engine contract the
    context consumes: ``_enqueue`` / ``_fanout`` / ``_aggregate``,
    ``num_vertices``, and an ``rng`` attribute.  Besides
    :class:`~repro.bsp.engine.PregelEngine` this is implemented by the
    per-process partition runtime of the parallel backend
    (:mod:`repro.bsp.parallel`), which runs ``compute()`` against its
    own accumulator state and ships the effects back to the
    coordinator.
    """

    def __init__(self, engine):
        self._engine = engine
        self.superstep: int = 0
        #: Number of vertices currently in the computation.  Plain
        #: attribute (not a property) because hot compute loops read
        #: it per vertex; rebound each superstep — mutations only
        #: apply at superstep boundaries, so it cannot go stale
        #: mid-superstep.
        self.num_vertices: int = engine.num_vertices
        self._current_vertex: Optional[VertexState] = None
        self._sent: int = 0
        self._charged: float = 0.0
        self._aggregates_prev: Dict[str, Any] = {}
        self._mutations = MutationLog()
        # Hot-path binding: forward aggregate() straight to the engine
        # (shadows the class method; one call frame per contribution).
        self.aggregate = engine._aggregate

    # -- rebinding (engine-internal) -----------------------------------

    def _begin_superstep(
        self, superstep: int, aggregates_prev: Dict[str, Any]
    ) -> None:
        self.superstep = superstep
        self.num_vertices = self._engine.num_vertices
        self._aggregates_prev = aggregates_prev

    def _begin_vertex(self, vertex: VertexState) -> None:
        self._current_vertex = vertex
        self._sent = 0
        self._charged = 0.0

    def _take_mutations(self) -> Optional[MutationLog]:
        """Detach and return the superstep's mutation log, or ``None``
        when no mutation was requested.

        Used by the parallel backend's partition workers to ship their
        local logs to the coordinator, which splices them together in
        worker-rank order — reproducing exactly the append order the
        serial engine's single shared log would have seen.
        """
        log = self._mutations
        if log.is_empty():
            return None
        self._mutations = MutationLog()
        return log

    # -- global read-only views ----------------------------------------

    @property
    def random(self) -> random.Random:
        """The run's seeded RNG (deterministic execution order makes
        randomized programs reproducible)."""
        return self._engine.rng

    def get_aggregate(self, name: str) -> Any:
        """The aggregator value reduced during the *previous*
        superstep, Pregel-style."""
        return self._aggregates_prev.get(name)

    # -- messaging -------------------------------------------------------

    def send(self, target: Hashable, message: Any) -> None:
        """Send ``message`` to ``target``, delivered next superstep.

        Raises :class:`~repro.errors.MessageToUnknownVertexError`
        (from the engine) when ``target`` is not a current vertex.
        """
        self._engine._enqueue(self._current_vertex.id, target, message)
        self._sent += 1

    def send_to_neighbors(
        self, vertex: VertexState, message: Any
    ) -> None:
        """Send ``message`` along every out-edge of ``vertex``.

        Dispatched as one bulk engine call so the fast path can hoist
        its per-message lookups out of the loop; accounting is
        identical to calling :meth:`send` per target.
        """
        self._sent += self._engine._fanout(
            self._current_vertex.id, vertex.out_edges, message
        )

    def send_to(self, targets: Iterable[Hashable], message: Any) -> None:
        """Send the same ``message`` to each vertex in ``targets``."""
        self._sent += self._engine._fanout(
            self._current_vertex.id, targets, message
        )

    # -- work accounting --------------------------------------------------

    def charge(self, ops: float) -> None:
        """Charge ``ops`` extra units of local work.

        The engine already charges one unit per compute call, per
        message consumed and per message sent; programs use ``charge``
        for additional loops (scanning a history set, sorting, …) so
        the cost model sees their true local work.
        """
        self._charged += ops

    # -- aggregation -------------------------------------------------------

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to aggregator ``name`` (visible to all
        next superstep)."""
        self._engine._aggregate(name, value)

    # -- topology mutation --------------------------------------------------

    def add_vertex(self, vertex_id: Hashable, value: Any = None) -> None:
        """Request creation of a new vertex before the next superstep."""
        self._mutations.add_vertices.append((vertex_id, value))

    def add_edge(
        self, u: Hashable, v: Hashable, weight: float = 1.0
    ) -> None:
        """Request a new directed runtime edge ``u -> v``."""
        self._mutations.add_edges.append((u, v, weight))

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Request removal of runtime edge ``u -> v``."""
        self._mutations.remove_edges.append((u, v))

    def remove_vertex(self, vertex_id: Hashable) -> None:
        """Request removal of a vertex (and its incident edges)."""
        self._mutations.remove_vertices.append(vertex_id)


class MasterContext:
    """Passed to ``master_compute`` between supersteps.

    Exposes the aggregates just reduced, activity counts, and the two
    global controls Pregel masters have: halting the computation and
    waking every vertex for the next superstep.
    """

    def __init__(
        self,
        superstep: int,
        aggregates: Dict[str, Any],
        num_active: int,
        num_vertices: int,
        pending_messages: int,
    ):
        self.superstep = superstep
        self._aggregates = aggregates
        self.num_active = num_active
        self.num_vertices = num_vertices
        self.pending_messages = pending_messages
        self._halt = False
        self._activate_all = False

    def get_aggregate(self, name: str) -> Any:
        """The aggregator value reduced in the superstep that just
        finished."""
        return self._aggregates.get(name)

    def halt(self) -> None:
        """Terminate the computation after this superstep."""
        self._halt = True

    def activate_all(self) -> None:
        """Wake every vertex for the next superstep (phase changes)."""
        self._activate_all = True
