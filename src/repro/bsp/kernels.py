"""Compute kernels: the per-superstep vertex-execution loops.

Bottom layer of the decomposed runtime (``docs/architecture.md``).  A
kernel is a function ``(engine, wake_all) -> active_count`` that runs
one superstep's ``compute()`` calls against the engine's current
mailbox layout and returns the number of active vertices.  The two
Pregel kernels live here:

* :func:`reference_compute_pass` — the dict-path oracle: vertices
  reached by id hash, inboxes popped from the fabric's dict mailbox;
* :func:`dense_compute_pass` — the dense fast path: vertices reached
  by frozen dense index, inboxes read from slot arrays and cleared
  O(active) via the dirty list.

Both kernels visit vertices in identical order (worker index order,
then the worker's ``vertex_ids`` order — the dense ranges mirror it),
apply identical wake/halt transitions, charge identical work
(``1 + len(messages) + sent + charged``) and feed the BPPA tracker
identically, which is one third of the engine's byte-identity
contract (the fabric's send/delivery ordering and the loop's
event/recovery ordering are the other two).

The other engines' loops play the same role in their stacks — the GAS
engine's gather/apply/scatter pass, the block engine's per-block
compute, the async engine's FIFO update loop — but live with their
engines (:mod:`repro.bsp.gas`, :mod:`repro.bsp.block`,
:mod:`repro.bsp.async_engine`): each is inseparable from its engine's
state layout, while the two Pregel kernels share one engine and are
swapped at runtime, which is why they are split out here.

The process-parallel backend (:mod:`repro.bsp.parallel`) replaces
:func:`dense_compute_pass` with a fan-out to real OS processes whose
rank loops run :func:`rank_compute_pass` — the dense loop re-rooted
at a rank's resident partition slice — while the serial kernels
remain its in-process fallback.
"""

from __future__ import annotations

import time


def reference_compute_pass(engine, wake_all: bool) -> int:
    """One superstep's compute calls on the dict path; returns the
    active-vertex count."""
    program = engine._program
    ctx = engine._ctx
    tracker = engine._tracker
    fabric = engine._fabric
    inbox = fabric.inbox
    states = fabric.states
    active_count = 0
    for worker in fabric.workers:
        seg_start = time.perf_counter()
        for vid in worker.vertex_ids:
            state = states.get(vid)
            if state is None:
                continue
            messages = inbox.pop(vid, None)
            if messages:
                state.halted = False
            elif state.halted and not wake_all:
                continue
            elif wake_all:
                state.halted = False
            messages = messages or []
            active_count += 1
            ctx._begin_vertex(state)
            program.compute(state, messages, ctx)
            ops = 1 + len(messages) + ctx._sent + ctx._charged
            worker.work += ops
            if tracker is not None:
                tracker.record_vertex(
                    vid,
                    ctx._sent,
                    len(messages),
                    ops,
                    program.state_size(state),
                )
        worker.wall_seconds = time.perf_counter() - seg_start
    return active_count


def dense_compute_pass(engine, wake_all: bool) -> int:
    """One superstep's compute calls on the dense path.

    Identical visit order, wake/halt transitions, work accounting,
    and tracker feed as :func:`reference_compute_pass`; vertex state
    and mailboxes are reached by dense index instead of by hashing,
    and consumed inbox slots are cleared O(active) via the dirty
    list.  Binds the fabric's per-worker accumulator lane and
    per-vertex send context (``cur_worker``/``cur_src``/``cur_idx``)
    that the fast send paths read.
    """
    program = engine._program
    ctx = engine._ctx
    tracker = engine._tracker
    fabric = engine._fabric
    compute = program.compute
    state_size = program.state_size
    begin_vertex = ctx._begin_vertex
    dense_states = fabric.dense_states
    in_slots = fabric.in_slots
    accs = fabric.accs
    cnts = fabric.cnts
    fabric.stamp += 1
    active_count = 0
    for worker in fabric.workers:
        seg_start = time.perf_counter()
        fabric.cur_worker = worker
        fabric.cur_src = worker.index
        fabric.acc = accs[worker.index]
        if cnts is not None:
            fabric.cnt = cnts[worker.index]
        work = worker.work
        for idx in range(worker.range_start, worker.range_stop):
            state = dense_states[idx]
            messages = in_slots[idx]
            if messages:
                state.halted = False
            elif state.halted and not wake_all:
                continue
            else:
                if wake_all:
                    state.halted = False
                messages = []
            active_count += 1
            fabric.cur_idx = idx
            begin_vertex(state)
            compute(state, messages, ctx)
            ops = 1 + len(messages) + ctx._sent + ctx._charged
            work += ops
            if tracker is not None:
                tracker.record_vertex(
                    state.id,
                    ctx._sent,
                    len(messages),
                    ops,
                    state_size(state),
                )
        worker.work = work
        if fabric.acc_touched:
            fabric.flush_worker_sends()
        worker.wall_seconds = time.perf_counter() - seg_start
    for idx in fabric.in_dirty:
        in_slots[idx] = None
    fabric.in_dirty = []
    return active_count


def rank_compute_pass(part, wake_all: bool, msgs_of: dict):
    """One pool rank's slice of a compute pass, executed inside the
    rank's own process against its resident partition.

    The loop body is :func:`dense_compute_pass`'s inner loop verbatim
    — same visit order (the rank's dense range mirrors the serial
    worker's), same wake/halt transitions, work accounting, and
    tracker feed — re-rooted at a ``_PartitionRuntime`` (which plays
    the fabric's role for sends) instead of the engine.  Inboxes
    arrive as ``msgs_of`` (dense idx -> messages) decoded from the
    transport rather than from the coordinator's slot arrays.

    Returns ``(active, work, executed, tracker_rows)``; ``executed``
    is the dense-index visit order the coordinator uses to replay
    values, halt flags and tracker rows in serial order.
    """
    ctx = part.ctx
    program = part.program
    compute = program.compute
    state_size = program.state_size
    begin_vertex = ctx._begin_vertex
    track = part.track_bppa
    tracker_rows = [] if track else None
    start = part.range_start
    active = 0
    work = 0.0
    executed = []
    for off, state in enumerate(part.states):
        idx = start + off
        messages = msgs_of.get(idx)
        if messages:
            state.halted = False
        elif state.halted and not wake_all:
            continue
        else:
            if wake_all:
                state.halted = False
            messages = []
        active += 1
        part.progress += 1
        part._cur_off = off
        begin_vertex(state)
        compute(state, messages, ctx)
        ops = 1 + len(messages) + ctx._sent + ctx._charged
        work += ops
        executed.append(idx)
        if track:
            tracker_rows.append(
                (
                    state.id,
                    ctx._sent,
                    len(messages),
                    ops,
                    state_size(state),
                )
            )
    return active, work, executed, tracker_rows
