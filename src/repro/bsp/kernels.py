"""Compute kernels: the per-superstep vertex-execution loops.

Bottom layer of the decomposed runtime (``docs/architecture.md``).  A
kernel is a function ``(engine, wake_all) -> active_count`` that runs
one superstep's ``compute()`` calls against the engine's current
mailbox layout and returns the number of active vertices.  The two
Pregel kernels live here:

* :func:`reference_compute_pass` — the dict-path oracle: vertices
  reached by id hash, inboxes popped from the fabric's dict mailbox;
* :func:`dense_compute_pass` — the dense fast path: vertices reached
  by frozen dense index, inboxes read from slot arrays and cleared
  O(active) via the dirty list.

Both kernels visit vertices in identical order (worker index order,
then the worker's ``vertex_ids`` order — the dense ranges mirror it),
apply identical wake/halt transitions, charge identical work
(``1 + len(messages) + sent + charged``) and feed the BPPA tracker
identically, which is one third of the engine's byte-identity
contract (the fabric's send/delivery ordering and the loop's
event/recovery ordering are the other two).

The other engines' loops play the same role in their stacks — the GAS
engine's gather/apply/scatter pass, the block engine's per-block
compute, the async engine's FIFO update loop — but live with their
engines (:mod:`repro.bsp.gas`, :mod:`repro.bsp.block`,
:mod:`repro.bsp.async_engine`): each is inseparable from its engine's
state layout, while the two Pregel kernels share one engine and are
swapped at runtime, which is why they are split out here.

The process-parallel backend (:mod:`repro.bsp.parallel`) replaces
:func:`dense_compute_pass` with a fan-out to real OS processes whose
rank loops run :func:`rank_compute_pass` — the dense loop re-rooted
at a rank's resident partition slice — while the serial kernels
remain its in-process fallback.

The vectorized tier
-------------------

On top of the two per-vertex loops sits an opt-in third tier:
whole-partition **vectorized kernels** that execute one superstep of a
*registered* program as array-shaped passes over the fabric's bulk
slot-mailbox views and a scatter plan precompiled from the dense
adjacency (an SpMV transposed into per-destination gather lists, held
in stdlib ``array`` lanes like the shm transport's columns; numpy, if
importable, accelerates elementwise steps only — never reductions).
Exact reproduction is the admission rule, not a goal: a kernel
registers for exactly one program class (``register_vectorized``) and
engages only when :meth:`applies` proves the superstep's semantics are
expressible with the *identical* float operation sequence as the
per-vertex loop — fixed summation order within a slot, left folds with
no injected zero seed (which would flip ``-0.0``), division by the
same exactly-converted degree.  Every other superstep — fault-injected
runs, mutations (which disengage the fast path entirely), wake-all
phases, unregistered programs, non-conforming topology — falls back to
:func:`dense_compute_pass` per superstep, mirroring the shm
transport's per-column spill design.  :func:`fast_compute_pass` is the
dispatcher the engine binds as its fast pass; the tier actually used
is reported per superstep via ``engine._kernel_tier`` /
``Worker.kernel_tier`` (observability only — never part of the
byte-identity surface).
"""

from __future__ import annotations

import operator
import time
from array import array
from collections import deque
from functools import partial, reduce
from itertools import repeat
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.bsp.aggregator import SumAggregator

try:
    import numpy as _np
except Exception:
    _np = None


def reference_compute_pass(engine, wake_all: bool) -> int:
    """One superstep's compute calls on the dict path; returns the
    active-vertex count."""
    program = engine._program
    ctx = engine._ctx
    tracker = engine._tracker
    fabric = engine._fabric
    inbox = fabric.inbox
    states = fabric.states
    active_count = 0
    for worker in fabric.workers:
        seg_start = time.perf_counter()
        for vid in worker.vertex_ids:
            state = states.get(vid)
            if state is None:
                continue
            messages = inbox.pop(vid, None)
            if messages:
                state.halted = False
            elif state.halted and not wake_all:
                continue
            elif wake_all:
                state.halted = False
            messages = messages or []
            active_count += 1
            ctx._begin_vertex(state)
            program.compute(state, messages, ctx)
            ops = 1 + len(messages) + ctx._sent + ctx._charged
            worker.work += ops
            if tracker is not None:
                tracker.record_vertex(
                    vid,
                    ctx._sent,
                    len(messages),
                    ops,
                    program.state_size(state),
                )
        worker.wall_seconds = time.perf_counter() - seg_start
    return active_count


def dense_compute_pass(engine, wake_all: bool) -> int:
    """One superstep's compute calls on the dense path.

    Identical visit order, wake/halt transitions, work accounting,
    and tracker feed as :func:`reference_compute_pass`; vertex state
    and mailboxes are reached by dense index instead of by hashing,
    and consumed inbox slots are cleared O(active) via the dirty
    list.  Binds the fabric's per-worker accumulator lane and
    per-vertex send context (``cur_worker``/``cur_src``/``cur_idx``)
    that the fast send paths read.
    """
    program = engine._program
    ctx = engine._ctx
    tracker = engine._tracker
    fabric = engine._fabric
    compute = program.compute
    state_size = program.state_size
    begin_vertex = ctx._begin_vertex
    dense_states = fabric.dense_states
    in_slots = fabric.in_slots
    accs = fabric.accs
    cnts = fabric.cnts
    fabric.stamp += 1
    active_count = 0
    for worker in fabric.workers:
        seg_start = time.perf_counter()
        fabric.cur_worker = worker
        fabric.cur_src = worker.index
        fabric.acc = accs[worker.index]
        if cnts is not None:
            fabric.cnt = cnts[worker.index]
        work = worker.work
        for idx in range(worker.range_start, worker.range_stop):
            state = dense_states[idx]
            messages = in_slots[idx]
            if messages:
                state.halted = False
            elif state.halted and not wake_all:
                continue
            else:
                if wake_all:
                    state.halted = False
                messages = []
            active_count += 1
            fabric.cur_idx = idx
            begin_vertex(state)
            compute(state, messages, ctx)
            ops = 1 + len(messages) + ctx._sent + ctx._charged
            work += ops
            if tracker is not None:
                tracker.record_vertex(
                    state.id,
                    ctx._sent,
                    len(messages),
                    ops,
                    state_size(state),
                )
        worker.work = work
        if fabric.acc_touched:
            fabric.flush_worker_sends()
        worker.wall_seconds = time.perf_counter() - seg_start
    for idx in fabric.in_dirty:
        in_slots[idx] = None
    fabric.in_dirty = []
    return active_count


def rank_compute_pass(part, wake_all: bool, msgs_of: dict):
    """One pool rank's slice of a compute pass, executed inside the
    rank's own process against its resident partition.

    The loop body is :func:`dense_compute_pass`'s inner loop verbatim
    — same visit order (the rank's dense range mirrors the serial
    worker's), same wake/halt transitions, work accounting, and
    tracker feed — re-rooted at a ``_PartitionRuntime`` (which plays
    the fabric's role for sends) instead of the engine.  Inboxes
    arrive as ``msgs_of`` (dense idx -> messages) decoded from the
    transport rather than from the coordinator's slot arrays.

    Returns ``(active, work, executed, tracker_rows)``; ``executed``
    is the dense-index visit order the coordinator uses to replay
    values, halt flags and tracker rows in serial order.
    """
    ctx = part.ctx
    program = part.program
    compute = program.compute
    state_size = program.state_size
    begin_vertex = ctx._begin_vertex
    track = part.track_bppa
    tracker_rows = [] if track else None
    start = part.range_start
    active = 0
    work = 0.0
    executed = []
    for off, state in enumerate(part.states):
        idx = start + off
        messages = msgs_of.get(idx)
        if messages:
            state.halted = False
        elif state.halted and not wake_all:
            continue
        else:
            if wake_all:
                state.halted = False
            messages = []
        active += 1
        part.progress += 1
        part._cur_off = off
        begin_vertex(state)
        compute(state, messages, ctx)
        ops = 1 + len(messages) + ctx._sent + ctx._charged
        work += ops
        executed.append(idx)
        if track:
            tracker_rows.append(
                (
                    state.id,
                    ctx._sent,
                    len(messages),
                    ops,
                    state_size(state),
                )
            )
    return active, work, executed, tracker_rows


# --------------------------------------------------------------------------
# Vectorized kernel tier
# --------------------------------------------------------------------------

#: Exact program type -> ``factory(engine, program) -> kernel | None``.
#: Keyed on the *exact* class (no subclass lookup): a subclass may
#: override ``compute`` and silently diverge from the kernel's baked-in
#: semantics, so it must re-register explicitly to opt in.
_VECTOR_KERNELS: Dict[type, Callable] = {}

#: Exact program type -> ``(allow_fn, factory)`` for the pool-rank side.
#: ``allow_fn(engine, superstep, wake_all)`` runs on the coordinator
#: against the authoritative fabric state; ``factory(part)`` compiles
#: the kernel inside the rank process against its partition slice.
_RANK_KERNELS: Dict[type, Tuple[Callable, Callable]] = {}


def register_vectorized(program_cls, factory, rank=None) -> None:
    """Register a vectorized kernel factory for ``program_cls``.

    ``factory(engine, program)`` returns a kernel object (``tier``
    attr, ``applies(engine, superstep, wake_all) -> phase | None``,
    ``run(engine, phase) -> active_count``) or ``None`` when the
    current topology can't be reproduced exactly (the dispatcher then
    stays on :func:`dense_compute_pass` for the run).  ``rank`` is an
    optional ``(allow_fn, rank_factory)`` pair enabling the kernel
    inside parallel pool ranks.
    """
    _VECTOR_KERNELS[program_cls] = factory
    if rank is not None:
        _RANK_KERNELS[program_cls] = rank


def has_vectorized_kernel(program_cls) -> bool:
    """True when a vectorized kernel is registered for the exact class."""
    return program_cls in _VECTOR_KERNELS


def rank_kernel_factory(program_cls):
    """The pool-rank kernel factory for ``program_cls``, or ``None``."""
    entry = _RANK_KERNELS.get(program_cls)
    return entry[1] if entry is not None else None


def rank_vector_allow(engine, superstep: int, wake_all: bool) -> bool:
    """Coordinator-side gate: may pool ranks vectorize this superstep?

    Evaluated against the authoritative (coordinator) fabric state so
    every rank receives the same verdict; mirrors the serial
    dispatcher's gates (explicit opt-out, fault injector present,
    unregistered program) plus the kernel's own ``applies`` test.
    """
    if engine._use_vectorized is False or engine._injector is not None:
        return False
    entry = _RANK_KERNELS.get(type(engine._program))
    if entry is None:
        return False
    return bool(entry[0](engine, superstep, wake_all))


def _segment_folder(combine):
    """Left fold with *no* initial value, matching send-time combining.

    The per-vertex path folds a destination's messages pairwise in
    arrival order (``acc = combine(acc, msg)``), seeded by the first
    message itself — never by a literal zero, which would turn
    ``-0.0`` into ``+0.0`` under sum-combining.  Kept as a module-level
    hook so the oracle-differential tests can swap in a deliberately
    re-associated fold and prove the harness catches it.
    """
    return partial(reduce, combine)


def _affine(totals, scale, shift):
    """``shift + scale * totals[i]`` elementwise — one IEEE-754
    multiply and one add per element under either implementation
    (both ops are commutative and round identically), so numpy may
    accelerate it when importable."""
    if _np is not None:
        return (
            _np.array(totals, dtype=_np.float64) * scale + shift
        ).tolist()
    return [shift + scale * t for t in totals]


def _elementwise_div(vals, degs, np_degs):
    """``vals[i] / degs[i]`` elementwise — IEEE-754 double division is
    bit-identical whether performed by CPython or numpy, so this (and
    only this kind of elementwise, non-reducing step) may be
    accelerated when numpy is importable."""
    if _np is not None and np_degs is not None:  # pragma: no cover
        return (_np.array(vals, dtype=_np.float64) / np_degs).tolist()
    return list(map(operator.truediv, vals, degs))


_HALTED = operator.attrgetter("halted")
_VALUE = operator.attrgetter("value")
_SUB = operator.sub
_SETITEM = operator.setitem
#: ``getter(shares)`` as a mappable: C-level apply over a getter column.
_CALL_WITH = operator.methodcaller


def _drain(iterator):
    """Run a C-level ``map`` pipeline for its side effects (a
    zero-length deque consumes without buffering)."""
    deque(iterator, maxlen=0)


class _ScatterLane:
    """A precompiled scatter plan for one worker's dense range.

    Transposes the range's out-adjacency into per-destination gather
    lists over the range's *share values* (one value per sending
    vertex, in ascending vertex order — the exact order the per-vertex
    loop would enqueue).  Destinations with a single contributor are
    batched behind one flat ``itemgetter`` (``s_dst``/``s_get``).
    Destinations with 2..``_GROUP_MAX`` contributors are grouped by
    contributor count ``k`` and transposed once more into ``k``
    *contributor columns* (``groups``): column ``j`` holds every
    grouped destination's ``j``-th message position, so one whole
    group folds with ``k - 1`` flat C-level ``map(combine, ...)``
    passes — the same per-destination left fold, batched.  The rare
    fatter destinations keep their own getter and fold count
    (``m_dst``/``m_get``/``m_cnt``).  ``order`` is the first-touch
    destination order — identical to the accumulator ``acc_touched``
    order the per-vertex pass would produce — and ``novel`` (see
    :func:`_link_commit_order`) is its cross-lane deduplication.
    Index lanes are stdlib ``array('q')`` / ``array('d')`` columns,
    same conventions as the shm transport.
    """

    __slots__ = (
        "n",
        "value_getter",
        "degs",
        "np_degs",
        "order",
        "novel",
        "s_dst",
        "s_get",
        "groups",
        "m_dst",
        "m_get",
        "m_cnt",
        "sent",
        "remote",
    )


#: Largest contributor count still transposed into columns; fatter
#: destinations (graph hubs) fold per destination, where the fold's
#: own cost amortizes over their many messages.
_GROUP_MAX = 64


def _column_getter(positions):
    """Flat C-level getter for one column of share positions (an
    ``itemgetter`` needs the slice form to stay a sequence when the
    column has a single entry)."""
    if len(positions) == 1:
        return operator.itemgetter(slice(positions[0], positions[0] + 1))
    return operator.itemgetter(*positions)


def _compile_scatter_lane(lo, hi, dense_out, remote_out):
    """Compile the scatter plan for dense positions ``[lo, hi)``.

    ``dense_out``/``remote_out`` are indexed by those positions (global
    dense index serially, local offset in a pool rank); destination
    indices in ``dense_out`` rows are global either way.  Returns
    ``None`` when any vertex in range has a dangling out-edge
    (``dense_out`` row ``None``) — the per-vertex path must run so the
    send raises identically.
    """
    senders = []
    degs = array("d")
    buckets: Dict[int, list] = {}
    order: List[int] = []
    sent = 0
    remote = 0
    k = 0
    for i in range(lo, hi):
        nbrs = dense_out[i]
        if nbrs is None:
            return None
        if not nbrs:
            continue
        senders.append(i - lo)
        degs.append(float(len(nbrs)))
        for dst in nbrs:
            bucket = buckets.get(dst)
            if bucket is None:
                buckets[dst] = [k]
                order.append(dst)
            else:
                bucket.append(k)
        sent += len(nbrs)
        remote += remote_out[i]
        k += 1
    lane = _ScatterLane()
    lane.n = k
    lane.degs = degs
    lane.np_degs = (
        _np.frombuffer(memoryview(degs), dtype=_np.float64)  # pragma: no cover
        if _np is not None and k
        else None
    )
    if not k:
        lane.value_getter = None
    elif senders[-1] - senders[0] + 1 == k:
        lane.value_getter = operator.itemgetter(
            slice(senders[0], senders[-1] + 1)
        )
    else:
        lane.value_getter = operator.itemgetter(*senders)
    s_dst = array("q")
    s_pos: List[int] = []
    grouped: Dict[int, list] = {}
    m_dst = array("q")
    m_get = []
    m_cnt = array("q")
    for dst in order:
        positions = buckets[dst]
        count = len(positions)
        if count == 1:
            s_dst.append(dst)
            s_pos.append(positions[0])
        elif count <= _GROUP_MAX:
            grouped.setdefault(count, []).append((dst, positions))
        else:
            m_dst.append(dst)
            m_get.append(operator.itemgetter(*positions))
            m_cnt.append(count)
    lane.order = array("q", order)
    lane.s_dst = s_dst
    if s_pos:
        lane.s_get = _column_getter(s_pos)
    else:
        lane.s_get = None
    groups = []
    for count in sorted(grouped):
        members = grouped[count]
        dsts = array("q", [dst for dst, _ in members])
        getters = tuple(
            _column_getter([positions[j] for _, positions in members])
            for j in range(count)
        )
        groups.append((count, dsts, getters))
    lane.groups = tuple(groups)
    lane.m_dst = m_dst
    lane.m_get = tuple(m_get)
    lane.m_cnt = m_cnt
    lane.sent = sent
    lane.remote = remote
    return lane


def _group_fold(combine, getters, shares):
    """Fold one contributor-column group pairwise, column by column.

    Column ``j`` holds every grouped destination's ``j``-th message,
    so chaining ``map(combine, carry, column_j)`` left to right
    performs, for each destination, exactly the per-vertex path's
    ``acc = combine(acc, msg)`` sequence in arrival order — batched
    across the whole group at C level.  Module-level for the same
    reason as :func:`_segment_folder`: the oracle-differential tests
    swap in a deliberately re-associated version and prove the
    harness catches it.
    """
    columns = iter(getters)
    carry = next(columns)(shares)
    for getter in columns:
        carry = map(combine, carry, getter(shares))
    return carry


def _scatter_combined(lane, shares, acc, cnt, combine):
    """Write one lane's shares into a combining accumulator lane.

    Equivalent to the per-vertex ``enqueue_fast_combining`` sequence:
    each destination's messages folded pairwise in arrival order
    (never seeded with a literal zero, which would flip ``-0.0``),
    counts set to the contribution count.  Single-contributor
    destinations skip the fold entirely via one flat C-level
    ``itemgetter`` call; grouped destinations fold column-wise
    (:func:`_group_fold`); the fat leftovers fold per destination
    (:func:`_segment_folder`).
    """
    if lane.s_dst:
        _drain(map(_SETITEM, repeat(acc), lane.s_dst, lane.s_get(shares)))
        _drain(map(_SETITEM, repeat(cnt), lane.s_dst, repeat(1)))
    for count, dsts, getters in lane.groups:
        _drain(
            map(
                _SETITEM,
                repeat(acc),
                dsts,
                _group_fold(combine, getters, shares),
            )
        )
        _drain(map(_SETITEM, repeat(cnt), dsts, repeat(count)))
    if lane.m_dst:
        fold = _segment_folder(combine)
        apply_shares = _CALL_WITH("__call__", shares)
        _drain(
            map(
                _SETITEM,
                repeat(acc),
                lane.m_dst,
                map(fold, map(apply_shares, lane.m_get)),
            )
        )
        _drain(map(_SETITEM, repeat(cnt), lane.m_dst, lane.m_cnt))


def _scatter_lists(lane, shares, acc):
    """Write one lane's shares into a plain (non-combining) accumulator
    lane as *fresh* per-destination buckets in arrival order — delivery
    adopts the first occupied lane's bucket object, so lanes must never
    share list instances."""
    if lane.s_dst:
        # ``zip(column)`` wraps each value in a 1-tuple at C level, so
        # ``map(list, ...)`` materializes the fresh single-item buckets
        # without a per-value Python frame.
        _drain(
            map(
                _SETITEM,
                repeat(acc),
                lane.s_dst,
                map(list, zip(lane.s_get(shares))),
            )
        )
    for _count, dsts, getters in lane.groups:
        columns = [getter(shares) for getter in getters]
        _drain(
            map(_SETITEM, repeat(acc), dsts, map(list, zip(*columns)))
        )
    if lane.m_dst:
        apply_shares = _CALL_WITH("__call__", shares)
        _drain(
            map(
                _SETITEM,
                repeat(acc),
                lane.m_dst,
                map(list, map(apply_shares, lane.m_get)),
            )
        )


def _link_commit_order(lanes):
    """Precompute each lane's ``novel`` column: the destinations it is
    the *first* lane to touch, in first-touch order.

    When a kernel scatters through every lane in worker-index order
    (the only way the serial kernels run), extending ``out_dirty``
    with the lanes' ``novel`` columns reproduces exactly the
    stamp-dedup that ``flush_worker_sends`` performs over
    ``acc_touched`` — but the dedup is paid once at compile time
    instead of every superstep."""
    seen = set()
    for lane in lanes:
        novel = [dst for dst in lane.order if dst not in seen]
        seen.update(novel)
        lane.novel = array("q", novel)


def fast_compute_pass(engine, wake_all: bool) -> int:
    """The dense fast path's dispatching kernel.

    Tries the registered vectorized kernel for the engine's program
    (exact class match, no fault injector, not explicitly disabled,
    topology compiled cleanly, and the kernel's ``applies`` proof holds
    for *this* superstep); otherwise falls back to
    :func:`dense_compute_pass`.  Records the tier actually used on the
    engine and its workers for trace observability.
    """
    kernel = _select_kernel(engine)
    if kernel is not None:
        phase = kernel.applies(engine, engine._ctx.superstep, wake_all)
        if phase is not None:
            _set_tier(engine, kernel.tier)
            return kernel.run(engine, phase)
    _set_tier(engine, "dense")
    return dense_compute_pass(engine, wake_all)


def _select_kernel(engine):
    if engine._use_vectorized is False or engine._injector is not None:
        return None
    factory = _VECTOR_KERNELS.get(type(engine._program))
    if factory is None:
        return None
    dense = engine._fabric.dense
    cache = engine._vector_kernel_cache
    if cache is not None and cache[0] is dense:
        return cache[1]
    kernel = factory(engine, engine._program)
    engine._vector_kernel_cache = (dense, kernel)
    return kernel


def _set_tier(engine, tier: str) -> None:
    engine._kernel_tier = tier
    for worker in engine._fabric.workers:
        worker.kernel_tier = tier


# -- PageRank ---------------------------------------------------------------


def _pagerank_phase(program, fabric, superstep, wake_all):
    """Which vectorized PageRank phase covers this superstep, if any.

    The program's ``compute`` has exactly three shapes, keyed on the
    superstep number: seed (rank ``1/n`` + scatter at superstep 0),
    steady (gather + aggregate + scatter), final (gather + aggregate +
    halt at ``num_supersteps``).  Anything off-script — a wake-all
    re-activation mid-run, a pre-halted vertex, supersteps past the
    program's horizon (possible after ``master_compute`` re-activates)
    — declines so the per-vertex loop reproduces it.
    """
    num = program.num_supersteps
    if superstep > num:
        return None
    states = fabric.dense_states
    if not states:
        return None
    if superstep == 0:
        if not wake_all or fabric.in_dirty:
            return None
    elif wake_all:
        return None
    if any(map(_HALTED, states)):
        return None
    return "seed" if superstep == 0 else ("final" if superstep == num else "steady")


class _PageRankVectorKernel:
    """Whole-partition PageRank pass over the slot mailboxes.

    Gather is ``sum(slot, 0.0)`` — the same left fold, seeded the same
    way, as the reference's ``total = 0.0; for m in messages: total +=
    m``.  The new rank is ``base + d * total`` with ``base`` computed
    by the reference's own expression ``(1.0 - damping) / n``, and
    shares divide by the int out-degree exactly converted to float —
    every float op bit-identical to the per-vertex loop.
    """

    tier = "vectorized"
    __slots__ = ("_lanes",)

    def __init__(self, lanes):
        self._lanes = lanes

    def applies(self, engine, superstep, wake_all):
        return _pagerank_phase(engine._program, engine._fabric, superstep, wake_all)

    def run(self, engine, phase):
        program = engine._program
        fabric = engine._fabric
        tracker = engine._tracker
        dense_states = fabric.dense_states
        in_slots = fabric.in_slots
        accs = fabric.accs
        cnts = fabric.cnts
        combine = fabric.combine if cnts is not None else None
        n = len(dense_states)
        d = program.damping
        seed = phase == "seed"
        final = phase == "final"
        if seed:
            inv_n = 1.0 / n
        else:
            base = (1.0 - d) / n
            agg = engine._agg_current
            aggregator = engine._aggregators["l1_change"]
            sum_agg = type(aggregator) is SumAggregator
        fabric.stamp += 1
        active = 0
        lanes = self._lanes
        for worker in fabric.workers:
            seg_start = time.perf_counter()
            lo = worker.range_start
            hi = worker.range_stop
            seg_states = dense_states[lo:hi]
            n_seg = hi - lo
            if seed:
                total_msgs = 0
                new_vals = [inv_n] * n_seg
            else:
                seg_slots = fabric.slot_view(lo, hi)
                total_msgs = sum(map(len, filter(None, seg_slots)))
                totals = [
                    sum(slot, 0.0) if slot else 0.0 for slot in seg_slots
                ]
                new_vals = _affine(totals, d, base)
                # L1 deltas fold in visit order, before assignment —
                # the reference aggregates against the *old* value.
                diffs = map(abs, map(_SUB, new_vals, map(_VALUE, seg_states)))
                if sum_agg:
                    agg["l1_change"] = sum(diffs, agg["l1_change"])
                else:
                    agg["l1_change"] = reduce(
                        aggregator.reduce, diffs, agg["l1_change"]
                    )
            _drain(map(setattr, seg_states, repeat("value"), new_vals))
            lane = lanes[worker.index]
            if final:
                _drain(
                    map(setattr, seg_states, repeat("halted"), repeat(True))
                )
                lane_sent = 0
            else:
                lane_sent = lane.sent
                if lane.n:
                    shares = _elementwise_div(
                        lane.value_getter(new_vals), lane.degs, lane.np_degs
                    )
                    if combine is not None:
                        _scatter_combined(
                            lane, shares, accs[worker.index],
                            cnts[worker.index], combine,
                        )
                    else:
                        _scatter_lists(lane, shares, accs[worker.index])
                    fabric.out_dirty.extend(lane.novel)
                    if fabric.memory_budget is not None:
                        fabric.account_lane(worker.index, lane.order)
                worker.sent_logical += lane_sent
                worker.sent_remote += lane.remote
                fabric.out_pending += lane_sent
            active += n_seg
            worker.work += float(n_seg + total_msgs + lane_sent)
            if tracker is not None:
                state_size = program.state_size
                record = tracker.record_vertex
                if seed:
                    for state in seg_states:
                        sent = len(state.out_edges)
                        record(state.id, sent, 0, 1 + sent + 0.0, state_size(state))
                elif final:
                    for state, slot in zip(seg_states, seg_slots):
                        ln = len(slot) if slot else 0
                        record(state.id, 0, ln, 1 + ln + 0.0, state_size(state))
                else:
                    for state, slot in zip(seg_states, seg_slots):
                        ln = len(slot) if slot else 0
                        sent = len(state.out_edges)
                        record(
                            state.id, sent, ln,
                            1 + ln + sent + 0.0, state_size(state),
                        )
            worker.wall_seconds = time.perf_counter() - seg_start
        for idx in fabric.in_dirty:
            in_slots[idx] = None
        fabric.in_dirty = []
        return active


def make_pagerank_kernel(engine, program):
    """Compile the serial PageRank kernel: one scatter lane per worker."""
    fabric = engine._fabric
    if not fabric.dense_states:
        return None
    lanes = []
    for worker in fabric.workers:
        lane = _compile_scatter_lane(
            worker.range_start, worker.range_stop,
            fabric.dense_out, fabric.remote_out,
        )
        if lane is None:
            return None
        lanes.append(lane)
    _link_commit_order(lanes)
    return _PageRankVectorKernel(lanes)


def pagerank_rank_allow(engine, superstep, wake_all):
    """Coordinator-side ``applies`` for the pool-rank PageRank kernel."""
    return _pagerank_phase(engine._program, engine._fabric, superstep, wake_all) is not None


class _RankPageRankKernel:
    """The PageRank pass re-rooted at a pool rank's partition slice.

    Same float sequence as the serial kernel; aggregate deltas are
    appended to ``part.agg_log`` per vertex (not folded) so the
    coordinator replays the identical reduce sequence, and the
    response contract matches :func:`rank_compute_pass` exactly
    (``executed`` covers the full slice, one tracker row per vertex).
    """

    __slots__ = ("_lane",)

    def __init__(self, lane):
        self._lane = lane

    def run(self, part, superstep, msgs_of):
        program = part.program
        states = part.states
        n_part = len(states)
        start = part.range_start
        n = part.num_vertices
        d = program.damping
        lane = self._lane
        if superstep == 0:
            seg_slots = None
            total_msgs = 0
            new_vals = [1.0 / n] * n_part
        else:
            seg_slots = [None] * n_part
            for idx, msgs in msgs_of.items():
                seg_slots[idx - start] = msgs
            total_msgs = sum(map(len, filter(None, seg_slots)))
            base = (1.0 - d) / n
            totals = [
                sum(slot, 0.0) if slot else 0.0 for slot in seg_slots
            ]
            new_vals = _affine(totals, d, base)
            part.agg_log.extend(
                zip(
                    repeat("l1_change"),
                    map(abs, map(_SUB, new_vals, map(_VALUE, states))),
                )
            )
        _drain(map(setattr, states, repeat("value"), new_vals))
        final = superstep == program.num_supersteps
        if final:
            _drain(map(setattr, states, repeat("halted"), repeat(True)))
            lane_sent = 0
        else:
            lane_sent = lane.sent
            if lane.n:
                shares = _elementwise_div(
                    lane.value_getter(new_vals), lane.degs, lane.np_degs
                )
                if part.cnt is not None:
                    _scatter_combined(
                        lane, shares, part.acc, part.cnt, part._combine
                    )
                else:
                    _scatter_lists(lane, shares, part.acc)
                part.acc_touched.extend(lane.order)
            part.sent_logical += lane_sent
            part.sent_remote += lane.remote
            part.out_pending += lane_sent
        work = float(n_part + total_msgs + lane_sent)
        tracker_rows = None
        if part.track_bppa:
            tracker_rows = []
            state_size = program.state_size
            row = tracker_rows.append
            if superstep == 0:
                for state in states:
                    sent = len(state.out_edges)
                    row((state.id, sent, 0, 1 + sent + 0.0, state_size(state)))
            elif final:
                for state, slot in zip(states, seg_slots):
                    ln = len(slot) if slot else 0
                    row((state.id, 0, ln, 1 + ln + 0.0, state_size(state)))
            else:
                for state, slot in zip(states, seg_slots):
                    ln = len(slot) if slot else 0
                    sent = len(state.out_edges)
                    row(
                        (state.id, sent, ln, 1 + ln + sent + 0.0,
                         state_size(state))
                    )
        part.progress += n_part
        executed = list(range(start, start + n_part))
        return n_part, work, executed, tracker_rows


def make_pagerank_rank_kernel(part):
    """Compile the pool-rank PageRank kernel for one partition slice."""
    if not part.states:
        return None
    lane = _compile_scatter_lane(
        0, len(part.states), part.dense_out, part.remote_out
    )
    if lane is None:
        return None
    return _RankPageRankKernel(lane)


# -- Min-propagation (hashmin / WCC) ----------------------------------------


def _steady_min_applies(fabric, superstep, wake_all):
    """Shared ``applies`` test for the min-propagation steady state:
    past superstep 0, no wake-all, and *every* vertex halted — then the
    per-vertex loop would visit exactly the vertices holding messages,
    which is the in-dirty list."""
    if superstep == 0 or wake_all:
        return None
    states = fabric.dense_states
    if not states or not all(map(_HALTED, states)):
        return None
    return "steady"


def _plain_numeric_ids(fabric):
    """True when every vertex id is a plain (non-bool) int or float.

    The min-label programs' labels are always drawn from the vertex-id
    set, and ``repr_key`` orders plain numerics by value alone, so
    under this proof ``min(messages)`` and ``a < b`` reproduce the
    keyed comparisons exactly — ties, NaNs and mixed int/float
    included, because the key tuples' leading elements are then always
    equal and every tuple comparison reduces to the same underlying
    value comparison the plain operators perform."""
    return all(type(i) in (int, float) for i in fabric.dense.id_of)


class _HashMinVectorKernel:
    """Steady-state hashmin pass: visit the sorted in-dirty list, take
    the min message under the program's total order, and fan improved
    labels out through the fabric's own send path (whose dense branch
    uses the precompiled adjacency and whose generic branch raises on
    dangling targets exactly as the per-vertex loop would).

    Superstep 0 (candidate gathering over ``vertex.neighbors()``) stays
    on the per-vertex loop; halt flags stay ``True`` throughout because
    the reference's wake -> compute -> ``vote_to_halt`` round-trips
    every visited vertex back to halted.
    """

    tier = "vectorized"
    __slots__ = ("_key",)

    def __init__(self, key):
        self._key = key

    def applies(self, engine, superstep, wake_all):
        return _steady_min_applies(engine._fabric, superstep, wake_all)

    def run(self, engine, phase):
        program = engine._program
        fabric = engine._fabric
        tracker = engine._tracker
        key = self._key
        state_size = program.state_size
        dense_states = fabric.dense_states
        in_slots = fabric.in_slots
        accs = fabric.accs
        cnts = fabric.cnts
        fanout = fabric.fanout
        fabric.stamp += 1
        visit = sorted(fabric.in_dirty)
        n_visit = len(visit)
        active = 0
        i = 0
        for worker in fabric.workers:
            seg_start = time.perf_counter()
            stop = worker.range_stop
            fabric.cur_worker = worker
            fabric.cur_src = worker.index
            fabric.acc = accs[worker.index]
            if cnts is not None:
                fabric.cnt = cnts[worker.index]
            work = worker.work
            while i < n_visit:
                idx = visit[i]
                if idx >= stop:
                    break
                i += 1
                messages = in_slots[idx]
                if not messages:
                    continue
                state = dense_states[idx]
                ln = len(messages)
                if key is None:
                    incoming = min(messages)
                    improved = incoming < state.value
                else:
                    incoming = min(messages, key=key)
                    improved = key(incoming) < key(state.value)
                if improved:
                    state.value = incoming
                    fabric.cur_idx = idx
                    sent = fanout(state.id, state.out_edges, incoming)
                else:
                    sent = 0
                active += 1
                ops = 1 + ln + sent + (0.0 + ln)
                work += ops
                if tracker is not None:
                    tracker.record_vertex(
                        state.id, sent, ln, ops, state_size(state)
                    )
            worker.work = work
            if fabric.acc_touched:
                fabric.flush_worker_sends()
            worker.wall_seconds = time.perf_counter() - seg_start
        for idx in fabric.in_dirty:
            in_slots[idx] = None
        fabric.in_dirty = []
        return active


def make_hashmin_kernel(engine, program, key):
    """Compile the hashmin steady-state kernel (``key`` is the
    program's total order over labels, dropped under the plain-numeric
    proof).

    Out-edge targets are precompiled to dense indices so the steady
    loop scatters inline; when any target is unmappable (dangling
    edge) the fanout-based kernel runs instead, so the generic send
    path raises there exactly as the per-vertex loop would.
    """
    fabric = engine._fabric
    states = fabric.dense_states
    if not states:
        return None
    if _plain_numeric_ids(fabric):
        key = None
    # Hashmin propagates along out-edges, which is exactly the dense
    # adjacency engage_fast_path already compiled (from the CSR columns
    # directly when the graph is a snapshot) — reuse those rows instead
    # of re-hashing every target.  A None row (dangling edge) keeps the
    # fanout-based kernel, whose generic send path raises exactly as
    # the per-vertex loop would.
    dense_out = fabric.dense_out
    if any(row is None for row in dense_out):
        return _HashMinVectorKernel(key)
    return _MinPropagationVectorKernel(
        key, dense_out, fabric.remote_out, charge_peers=False
    )


class _MinPropagationVectorKernel:
    """Steady-state min-label pass (WCC and hashmin) with the
    per-vertex peer lists precompiled to dense indices and remote
    counts, so the steady loop never rebuilds a set or hashes an id.
    The inline scatter mirrors the fabric's generic fanout branch
    (first-touch append, pairwise combining in arrival order).

    ``charge_peers`` reproduces WCC's cost model, which charges the
    peer-set size on every visit; hashmin's compute term is message
    count only.
    """

    tier = "vectorized"
    __slots__ = ("_key", "_peer_idx", "_peer_remote", "_charge_peers")

    def __init__(self, key, peer_idx, peer_remote, charge_peers):
        self._key = key
        self._peer_idx = peer_idx
        self._peer_remote = peer_remote
        self._charge_peers = charge_peers

    def applies(self, engine, superstep, wake_all):
        return _steady_min_applies(engine._fabric, superstep, wake_all)

    def run(self, engine, phase):
        program = engine._program
        fabric = engine._fabric
        tracker = engine._tracker
        key = self._key
        peer_idx = self._peer_idx
        peer_remote = self._peer_remote
        charge_peers = self._charge_peers
        state_size = program.state_size
        dense_states = fabric.dense_states
        in_slots = fabric.in_slots
        accs = fabric.accs
        cnts = fabric.cnts
        combine = fabric.combine
        fabric.stamp += 1
        visit = sorted(fabric.in_dirty)
        n_visit = len(visit)
        active = 0
        i = 0
        for worker in fabric.workers:
            seg_start = time.perf_counter()
            stop = worker.range_stop
            fabric.cur_worker = worker
            fabric.cur_src = worker.index
            # Bind the fabric's lane pointers too: flush_worker_sends
            # identifies the finishing worker through them when the
            # spill tier is accounting lanes.
            fabric.acc = acc = accs[worker.index]
            cnt = cnts[worker.index] if cnts is not None else None
            fabric.cnt = cnt
            touched = fabric.acc_touched
            work = worker.work
            sent_total = 0
            remote_total = 0
            while i < n_visit:
                idx = visit[i]
                if idx >= stop:
                    break
                i += 1
                messages = in_slots[idx]
                if not messages:
                    continue
                state = dense_states[idx]
                ln = len(messages)
                peers = peer_idx[idx]
                n_peers = len(peers)
                if key is None:
                    incoming = min(messages)
                    improved = incoming < state.value
                else:
                    incoming = min(messages, key=key)
                    improved = key(incoming) < key(state.value)
                if improved:
                    state.value = incoming
                    if cnt is not None:
                        for dst in peers:
                            c = cnt[dst]
                            if c:
                                acc[dst] = combine(acc[dst], incoming)
                                cnt[dst] = c + 1
                            else:
                                acc[dst] = incoming
                                cnt[dst] = 1
                                touched.append(dst)
                    else:
                        for dst in peers:
                            bucket = acc[dst]
                            if bucket is None:
                                acc[dst] = [incoming]
                                touched.append(dst)
                            else:
                                bucket.append(incoming)
                    sent = n_peers
                    sent_total += n_peers
                    remote_total += peer_remote[idx]
                else:
                    sent = 0
                active += 1
                if charge_peers:
                    ops = 1 + ln + sent + (0.0 + n_peers + ln)
                else:
                    ops = 1 + ln + sent + (0.0 + ln)
                work += ops
                if tracker is not None:
                    tracker.record_vertex(
                        state.id, sent, ln, ops, state_size(state)
                    )
            worker.work = work
            worker.sent_logical += sent_total
            worker.sent_remote += remote_total
            fabric.out_pending += sent_total
            if fabric.acc_touched:
                fabric.flush_worker_sends()
            worker.wall_seconds = time.perf_counter() - seg_start
        for idx in fabric.in_dirty:
            in_slots[idx] = None
        fabric.in_dirty = []
        return active


def make_wcc_kernel(engine, program, key, peers_of):
    """Compile the WCC steady-state kernel.

    ``peers_of(state)`` must be the program's own peer-set expression,
    evaluated here once per vertex; peers are mapped to dense indices
    (bailing out to the per-vertex loop if any target is unknown, so
    the send raises identically there).
    """
    fabric = engine._fabric
    states = fabric.dense_states
    if not states:
        return None
    idx_get = fabric.dense.idx_of.get
    owner_of = fabric.dense.owner_of
    peer_idx = []
    peer_remote = []
    for i, state in enumerate(states):
        src = owner_of[i]
        row = []
        remote = 0
        for peer in peers_of(state):
            j = idx_get(peer)
            if j is None:
                return None
            row.append(j)
            if owner_of[j] != src:
                remote += 1
        peer_idx.append(row)
        peer_remote.append(remote)
    if _plain_numeric_ids(fabric):
        key = None
    return _MinPropagationVectorKernel(
        key, peer_idx, peer_remote, charge_peers=True
    )


# -- Degree centrality ------------------------------------------------------


class _DegreeVectorKernel:
    """Degree-style workload: a seed superstep scattering a constant
    ``1.0`` along the precompiled lanes, then pure gather supersteps
    (``value += sum(slot, 0.0)``) over the in-dirty list with every
    vertex staying halted."""

    tier = "vectorized"
    __slots__ = ("_lanes", "_ones")

    def __init__(self, lanes):
        self._lanes = lanes
        self._ones = [[1.0] * lane.n for lane in lanes]

    def applies(self, engine, superstep, wake_all):
        fabric = engine._fabric
        states = fabric.dense_states
        if not states:
            return None
        if superstep == 0:
            if not wake_all or fabric.in_dirty:
                return None
            if any(map(_HALTED, states)):
                return None
            return "seed"
        if wake_all or not all(map(_HALTED, states)):
            return None
        return "gather"

    def run(self, engine, phase):
        program = engine._program
        fabric = engine._fabric
        tracker = engine._tracker
        state_size = program.state_size
        dense_states = fabric.dense_states
        in_slots = fabric.in_slots
        accs = fabric.accs
        cnts = fabric.cnts
        combine = fabric.combine if cnts is not None else None
        fabric.stamp += 1
        active = 0
        if phase == "seed":
            lanes = self._lanes
            for worker in fabric.workers:
                seg_start = time.perf_counter()
                lo = worker.range_start
                hi = worker.range_stop
                seg_states = dense_states[lo:hi]
                for state in seg_states:
                    state.value = 0.0
                    state.halted = True
                lane = lanes[worker.index]
                if lane.n:
                    ones = self._ones[worker.index]
                    if combine is not None:
                        _scatter_combined(
                            lane, ones, accs[worker.index],
                            cnts[worker.index], combine,
                        )
                    else:
                        _scatter_lists(lane, ones, accs[worker.index])
                    fabric.out_dirty.extend(lane.novel)
                    if fabric.memory_budget is not None:
                        fabric.account_lane(worker.index, lane.order)
                worker.sent_logical += lane.sent
                worker.sent_remote += lane.remote
                fabric.out_pending += lane.sent
                n_seg = hi - lo
                active += n_seg
                worker.work += float(n_seg + lane.sent)
                if tracker is not None:
                    record = tracker.record_vertex
                    for state in seg_states:
                        sent = len(state.out_edges)
                        record(
                            state.id, sent, 0,
                            1 + sent + 0.0, state_size(state),
                        )
                worker.wall_seconds = time.perf_counter() - seg_start
        else:
            visit = sorted(fabric.in_dirty)
            n_visit = len(visit)
            i = 0
            for worker in fabric.workers:
                seg_start = time.perf_counter()
                stop = worker.range_stop
                work = worker.work
                while i < n_visit:
                    idx = visit[i]
                    if idx >= stop:
                        break
                    i += 1
                    messages = in_slots[idx]
                    if not messages:
                        continue
                    state = dense_states[idx]
                    ln = len(messages)
                    state.value = state.value + sum(messages, 0.0)
                    active += 1
                    ops = 1 + ln + 0.0
                    work += ops
                    if tracker is not None:
                        tracker.record_vertex(
                            state.id, 0, ln, ops, state_size(state)
                        )
                worker.work = work
                worker.wall_seconds = time.perf_counter() - seg_start
        for idx in fabric.in_dirty:
            in_slots[idx] = None
        fabric.in_dirty = []
        return active


def make_degree_kernel(engine, program):
    """Compile the degree-centrality kernel: one scatter lane per
    worker for the constant-message seed superstep."""
    fabric = engine._fabric
    if not fabric.dense_states:
        return None
    lanes = []
    for worker in fabric.workers:
        lane = _compile_scatter_lane(
            worker.range_start, worker.range_stop,
            fabric.dense_out, fabric.remote_out,
        )
        if lane is None:
            return None
        lanes.append(lane)
    _link_commit_order(lanes)
    return _DegreeVectorKernel(lanes)